//! Property-based tests of the DRAM model: sequences generated through
//! the timing state machine are always accepted by the independent
//! validator, storage behaves like a value-faithful memory under random
//! access patterns, and the earliest-issue function is consistent with
//! issue legality.

use dram_sim::bank::{BankCommand, BankTimer};
use dram_sim::storage::BankStorage;
use dram_sim::timing::{Geometry, TimingParams};
use dram_sim::validate::{validate_trace, TraceEntry};
use proptest::prelude::*;

/// A random but *state-aware* command choice: picks among the commands
/// that are legal in the current row state.
fn step_command(open: bool, pick: u8, row: u32, col: u32) -> BankCommand {
    if open {
        match pick % 4 {
            0 => BankCommand::Rd { col },
            1 => BankCommand::Wr { col },
            _ => BankCommand::Pre,
        }
    } else {
        match pick % 4 {
            0 | 1 => BankCommand::Act { row },
            2 => BankCommand::Ref,
            _ => BankCommand::Pre, // no-op precharge is legal
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any sequence issued at the BankTimer's own earliest times replays
    /// cleanly through the independent validator.
    #[test]
    fn generated_sequences_validate(
        picks in prop::collection::vec((any::<u8>(), 0u32..64, 0u32..32), 1..120),
    ) {
        let timing = TimingParams::hbm2e().resolve();
        let geometry = Geometry::hbm2e_single_bank();
        let mut bank = BankTimer::new(timing);
        let mut trace = Vec::new();
        let mut cursor = 0u64;
        for (pick, row, col) in picks {
            let cmd = step_command(bank.open_row().is_some(), pick, row, col);
            let earliest = bank.earliest_issue(cmd, cursor).expect("state-legal");
            // Align to the command-bus grid, strictly after the previous
            // command (one command per cycle).
            let mut slot = earliest.div_ceil(timing.cycle_ps) * timing.cycle_ps;
            if !trace.is_empty() && slot <= cursor {
                slot = cursor + timing.cycle_ps;
            }
            bank.issue_at(cmd, slot).expect("earliest is legal");
            trace.push(TraceEntry { at_ps: slot, bank: 0, cmd });
            cursor = slot;
        }
        validate_trace(timing, geometry, &trace)
            .map_err(|(i, e)| TestCaseError::fail(format!("entry {i}: {e}")))?;
    }

    /// Issuing even one cycle before `earliest_issue` is rejected.
    #[test]
    fn earliest_is_tight_for_act_after_pre(gap in 0u64..20) {
        let timing = TimingParams::hbm2e().resolve();
        let mut bank = BankTimer::new(timing);
        bank.issue_at(BankCommand::Act { row: 0 }, 0).unwrap();
        let pre_at = bank.earliest_issue(BankCommand::Pre, 0).unwrap();
        bank.issue_at(BankCommand::Pre, pre_at).unwrap();
        let act_at = bank.earliest_issue(BankCommand::Act { row: 1 }, 0).unwrap();
        let early = act_at.saturating_sub(gap * timing.cycle_ps);
        let act = BankCommand::Act { row: 1 };
        if early < act_at {
            let r = bank.issue_at(act, early);
            prop_assert!(r.is_err());
        } else {
            let r = bank.issue_at(act, act_at);
            prop_assert!(r.is_ok());
        }
    }

    /// Storage is value-faithful: after arbitrary interleavings of atom
    /// writes in an open row and precharges, reading back gives exactly
    /// what a plain array model holds.
    #[test]
    fn storage_matches_shadow_array(
        ops in prop::collection::vec((0u32..8, 0u32..32, any::<u32>()), 1..60),
    ) {
        let geometry = Geometry::hbm2e_single_bank();
        let mut storage = BankStorage::new(geometry);
        let mut shadow = vec![0u32; 8 * geometry.row_words()];
        let mut open: Option<u32> = None;
        for (row, col, value) in ops {
            if open != Some(row) {
                storage.precharge();
                storage.activate(row).unwrap();
                open = Some(row);
            }
            let atom = vec![value; geometry.atom_words()];
            storage.write_atom(col, &atom).unwrap();
            let base = row as usize * geometry.row_words()
                + col as usize * geometry.atom_words();
            shadow[base..base + geometry.atom_words()].fill(value);
            // Read-after-write within the open row sees the new data.
            prop_assert_eq!(storage.read_atom(col).unwrap(), atom);
        }
        storage.precharge();
        prop_assert_eq!(storage.read_words(0, shadow.len()), shadow);
    }

    /// The validator rejects any trace whose single perturbed entry moves
    /// earlier than its legal time.
    #[test]
    fn validator_catches_backdated_column_reads(shift_cycles in 1u64..14) {
        let timing = TimingParams::hbm2e().resolve();
        let geometry = Geometry::hbm2e_single_bank();
        let c = timing.cycle_ps;
        let trace = vec![
            TraceEntry { at_ps: 0, bank: 0, cmd: BankCommand::Act { row: 1 } },
            TraceEntry {
                at_ps: (14 - shift_cycles) * c,
                bank: 0,
                cmd: BankCommand::Rd { col: 0 },
            },
        ];
        prop_assert!(validate_trace(timing, geometry, &trace).is_err());
    }
}
