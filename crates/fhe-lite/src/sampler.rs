//! Seeded polynomial samplers (uniform, ternary, centered binomial).
//!
//! Deterministic by construction: every sampler takes an explicit seed, so
//! experiments and tests reproduce bit-for-bit. (A real implementation
//! would use an OS CSPRNG — this layer is a workload generator, not a
//! cryptosystem.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples a uniform polynomial with coefficients in `[0, q)`.
pub fn uniform(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..q)).collect()
}

/// Samples a ternary polynomial with coefficients in `{-1, 0, 1}`,
/// represented mod `q` (so `-1 ↦ q-1`).
pub fn ternary(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| match rng.gen_range(0..3u8) {
            0 => 0,
            1 => 1,
            _ => q - 1,
        })
        .collect()
}

/// Samples a centered binomial polynomial with parameter `eta`
/// (coefficients in `[-eta, eta]`, represented mod `q`).
pub fn centered_binomial(n: usize, q: u64, eta: u32, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut acc: i64 = 0;
            for _ in 0..eta {
                acc += rng.gen_range(0..2i64) - rng.gen_range(0..2i64);
            }
            if acc >= 0 {
                acc as u64
            } else {
                q - (-acc) as u64
            }
        })
        .collect()
}

/// Samples a plaintext polynomial with coefficients in `[0, t)`.
pub fn plaintext(n: usize, t: u64, seed: u64) -> Vec<u64> {
    uniform(n, t, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u64 = 1_000_003;

    #[test]
    fn samplers_are_deterministic() {
        assert_eq!(uniform(64, Q, 7), uniform(64, Q, 7));
        assert_ne!(uniform(64, Q, 7), uniform(64, Q, 8));
        assert_eq!(ternary(64, Q, 1), ternary(64, Q, 1));
        assert_eq!(
            centered_binomial(64, Q, 2, 3),
            centered_binomial(64, Q, 2, 3)
        );
    }

    #[test]
    fn ranges_respected() {
        for &c in &uniform(512, Q, 1) {
            assert!(c < Q);
        }
        for &c in &ternary(512, Q, 2) {
            assert!(c == 0 || c == 1 || c == Q - 1);
        }
        for &c in &centered_binomial(512, Q, 2, 3) {
            assert!(c <= 2 || c >= Q - 2);
        }
        for &c in &plaintext(512, 16, 4) {
            assert!(c < 16);
        }
    }

    #[test]
    fn binomial_is_centered() {
        let v = centered_binomial(4096, Q, 2, 5);
        let sum: i64 = v
            .iter()
            .map(|&c| {
                if c > Q / 2 {
                    c as i64 - Q as i64
                } else {
                    c as i64
                }
            })
            .sum();
        // Mean should be near zero: |sum| < n/8 with overwhelming margin.
        assert!(sum.unsigned_abs() < 512, "sum {sum}");
    }
}
