//! RLWE parameter sets.

use crate::FheError;
use modmath::prime::{find_ntt_prime, NttField};
use ntt_ref::plan::NttPlan;

/// Parameters of the ring `R_q = Z_q[X]/(X^N + 1)` with `q = Π qᵢ` in RNS
/// form, plus a plaintext modulus `t`.
///
/// Every RNS prime satisfies `qᵢ ≡ 1 (mod 2N)` (negacyclic NTT support)
/// and `qᵢ < 2³¹` (the PIM datapath's 32-bit words).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fhe_lite::FheError> {
/// let p = fhe_lite::params::RlweParams::new(1024, 2, 16)?;
/// assert_eq!(p.n(), 1024);
/// assert_eq!(p.moduli().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RlweParams {
    n: usize,
    moduli: Vec<u64>,
    plans: Vec<NttPlan>,
    t: u64,
}

impl RlweParams {
    /// Builds a parameter set with `k` distinct ~30-bit RNS primes.
    ///
    /// # Errors
    ///
    /// [`FheError::BadParams`] for a non-power-of-two `n`, `k == 0`,
    /// `t < 2`, or when not enough primes exist.
    pub fn new(n: usize, k: usize, t: u64) -> Result<Self, FheError> {
        if !n.is_power_of_two() || n < 4 {
            return Err(FheError::BadParams {
                reason: format!("ring degree {n} must be a power of two >= 4"),
            });
        }
        if k == 0 {
            return Err(FheError::BadParams {
                reason: "at least one RNS modulus is required".into(),
            });
        }
        if t < 2 {
            return Err(FheError::BadParams {
                reason: "plaintext modulus must be at least 2".into(),
            });
        }
        let mut moduli = Vec::with_capacity(k);
        let mut plans = Vec::with_capacity(k);
        let mut last: Option<u64> = None;
        while moduli.len() < k {
            // The first prime is the largest below 2^31 (PIM datapath
            // bound); subsequent ones walk downward so all are distinct.
            let q = match last {
                None => find_ntt_prime(2 * n as u64, 31)?,
                Some(prev) => next_prime_below(prev, 2 * n as u64)?,
            };
            let field = NttField::new(n, q)?;
            plans.push(NttPlan::new(field));
            moduli.push(q);
            last = Some(q);
        }
        Ok(Self {
            n,
            moduli,
            plans,
            t,
        })
    }

    /// Ring degree `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The RNS prime moduli.
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// Per-modulus negacyclic NTT plans.
    pub fn plans(&self) -> &[NttPlan] {
        &self.plans
    }

    /// Plaintext modulus `t`.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// The composite modulus `q = Π qᵢ` as `u128`.
    ///
    /// # Panics
    ///
    /// Panics if the product overflows 128 bits (more than four ~30-bit
    /// primes — beyond the toy scheme's scope).
    pub fn q_full(&self) -> u128 {
        self.moduli
            .iter()
            .fold(1u128, |acc, &q| acc.checked_mul(q as u128).expect("q fits"))
    }

    /// `Δ = floor(q / t)`, the BFV plaintext scaling factor.
    pub fn delta(&self) -> u128 {
        self.q_full() / self.t as u128
    }
}

fn next_prime_below(prev: u64, multiple: u64) -> Result<u64, FheError> {
    let mut k = (prev - 1) / multiple;
    while k > 1 {
        k -= 1;
        let cand = k * multiple + 1;
        if modmath::prime::is_prime(cand) {
            return Ok(cand);
        }
    }
    Err(FheError::BadParams {
        reason: format!("no further primes = 1 mod {multiple} below {prev}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_distinct_ntt_primes() {
        let p = RlweParams::new(1024, 3, 16).unwrap();
        assert_eq!(p.moduli().len(), 3);
        for w in p.moduli().windows(2) {
            assert_ne!(w[0], w[1]);
        }
        for &q in p.moduli() {
            assert!(modmath::prime::is_prime(q));
            assert_eq!((q - 1) % 2048, 0);
            assert!(q < 1 << 31);
        }
    }

    #[test]
    fn delta_and_q_consistent() {
        let p = RlweParams::new(256, 2, 16).unwrap();
        let q = p.q_full();
        assert_eq!(q, p.moduli()[0] as u128 * p.moduli()[1] as u128);
        assert!(p.delta() * 16 <= q);
        assert!((p.delta() + 1) * 16 > q);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(RlweParams::new(100, 1, 16).is_err());
        assert!(RlweParams::new(256, 0, 16).is_err());
        assert!(RlweParams::new(256, 1, 1).is_err());
    }
}
