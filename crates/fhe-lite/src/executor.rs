//! PIM offload of the FHE NTT workload.
//!
//! An RNS polynomial's per-modulus forward NTTs are independent — the
//! "FHE applications can naturally run multiple NTT functions using
//! multiple banks" workload of the paper's §VI.A and conclusion.
//! [`ntt_all_components`] places one residue polynomial per bank, runs
//! the batch over the shared command bus, checks values against the CPU
//! reference, and reports the speedup over running the same work through
//! a single bank. [`polymul_all_components`] runs whole ring
//! multiplications through the queue-based batch path: components are
//! packed onto per-bank queues (so the modulus count may exceed the bank
//! count) and drained asynchronously, with no full-chip barrier.

use crate::params::RlweParams;
use crate::rns::RnsPoly;
use crate::FheError;
use ntt_pim_core::config::PimConfig;
use ntt_pim_core::device::{PimDevice, StoredOrder};

/// Timing summary of one batched offload.
#[derive(Debug, Clone)]
pub struct OffloadReport {
    /// Latency of the bank-parallel batch (slowest bank), ns.
    pub batch_ns: f64,
    /// Sum of the same transforms run one-at-a-time in one bank, ns.
    pub sequential_ns: f64,
    /// Number of NTTs executed.
    pub transforms: usize,
}

impl OffloadReport {
    /// Bank-parallel speedup (the paper expects near-linear in banks).
    pub fn speedup(&self) -> f64 {
        self.sequential_ns / self.batch_ns
    }
}

/// Runs the forward NTT of every RNS component of `poly` on PIM, one bank
/// per component, verifying functional equality with the CPU transform.
///
/// The device must have at least `poly.components()` banks; residue
/// moduli must fit the 32-bit datapath (guaranteed by [`RlweParams`]).
///
/// # Errors
///
/// Propagates PIM errors; [`FheError::BadParams`] when the device has too
/// few banks.
pub fn ntt_all_components(
    params: &RlweParams,
    poly: &RnsPoly,
    config: &PimConfig,
) -> Result<OffloadReport, FheError> {
    let k = poly.components();
    if config.total_banks() < k {
        return Err(FheError::BadParams {
            reason: format!("need {k} banks, device has {}", config.total_banks()),
        });
    }
    let mut dev = PimDevice::new(*config)?;
    let mut handles = Vec::with_capacity(k);
    for i in 0..k {
        let q = params.moduli()[i] as u32;
        let coeffs: Vec<u32> = poly.residues(i).iter().map(|&c| c as u32).collect();
        handles.push(dev.load_in_bank(i, 0, &coeffs, q, StoredOrder::BitReversed)?);
    }
    let batch = dev.ntt_batch(&mut handles)?;

    // Functional check against the CPU reference (cyclic forward NTT with
    // the same ω the device derives).
    for (i, h) in handles.iter().enumerate() {
        let got = dev.read_polynomial(h)?;
        let q = params.moduli()[i];
        let omega = modmath::prime::root_of_unity(params.n() as u64, q)?;
        let expect = direct_ntt(poly.residues(i), omega, q);
        if let Some(idx) = got.iter().zip(&expect).position(|(&a, &b)| a as u64 != b) {
            return Err(FheError::Pim(ntt_pim_core::PimError::VerificationFailed {
                index: idx,
                got: got[idx],
                expected: expect[idx] as u32,
            }));
        }
    }

    // Sequential reference: same transforms one bank at a time.
    let mut sequential_ns = 0.0;
    for i in 0..k {
        let q = params.moduli()[i] as u32;
        let mut single =
            PimDevice::new(config.with_topology(ntt_pim_core::config::Topology::single_rank(1)))?;
        let coeffs: Vec<u32> = poly.residues(i).iter().map(|&c| c as u32).collect();
        let h = single.load_polynomial_bitrev(0, &coeffs, q)?;
        let rep = single.ntt(&h, ntt_pim_core::device::NttDirection::Forward)?;
        sequential_ns += rep.latency_ns();
    }
    Ok(OffloadReport {
        batch_ns: batch.latency_ns,
        sequential_ns,
        transforms: k,
    })
}

/// Multiplies two RNS polynomials entirely on PIM: one negacyclic product
/// per modulus, components packed onto per-bank queues and drained
/// asynchronously over the shared command bus (the batch-executor path;
/// each bank starts its next component the moment the previous finishes,
/// with no full-chip barrier). The full FHE ring multiplication of the
/// paper's Eq. (1), on-device.
///
/// Unlike the one-component-per-bank wave model this replaced, the RNS
/// component count `k` may exceed the device's bank count: excess
/// components queue behind earlier ones on the same bank. All components
/// share one transform length, so balanced (equal-cost LPT) assignment
/// is optimal.
///
/// Returns the product (replacing nothing in the inputs) and the queue
/// timing report.
///
/// # Errors
///
/// [`FheError::ParamMismatch`] on component-count mismatch; PIM errors
/// otherwise.
pub fn polymul_all_components(
    params: &RlweParams,
    a: &RnsPoly,
    b: &RnsPoly,
    config: &PimConfig,
) -> Result<(RnsPoly, ntt_pim_core::device::QueueReport), FheError> {
    let k = a.components();
    if b.components() != k {
        return Err(FheError::ParamMismatch);
    }
    let n = params.n();
    let mut dev = PimDevice::new(*config)?;
    let banks = config.total_banks();
    // Every component is a length-n product and PIM timing is
    // modulus-independent, so equal costs make the hierarchical LPT a
    // balanced deal across channels, ranks, and banks alike.
    let assignment = ntt_pim_core::sched::lpt_assign_topology(&vec![1.0; k], &config.topology);
    let b_base = config.polymul_rhs_base(n);
    let mut out = RnsPoly::zero(params);
    let mut queues: Vec<Vec<ntt_pim_core::mapper::Program>> = vec![Vec::new(); banks];
    for (bank, queue) in assignment.iter().enumerate() {
        for &i in queue {
            let q = params.moduli()[i] as u32;
            let ra: Vec<u32> = a.residues(i).iter().map(|&c| c as u32).collect();
            let rb: Vec<u32> = b.residues(i).iter().map(|&c| c as u32).collect();
            let ha = dev.load_in_bank(bank, 0, &ra, q, StoredOrder::Natural)?;
            let hb = dev.load_in_bank(bank, b_base, &rb, q, StoredOrder::Natural)?;
            let program = dev.polymul_program(&ha, &hb)?;
            dev.execute_program(bank, &program)?;
            let got = dev.read_polynomial(&ha)?;
            out.set_residues(i, got.into_iter().map(u64::from).collect());
            queues[bank].push(program);
        }
    }
    let report = dev.schedule_queues(&queues)?;
    Ok((out, report))
}

fn direct_ntt(x: &[u64], omega: u64, q: u64) -> Vec<u64> {
    let n = x.len();
    // O(N²) would be slow for large N; use the iterative reference via a
    // plan seeded with the matching root. ψ with ψ² = ω is needed by the
    // plan; find one by taking a 2N-th root whose square is ω.
    let psi = matching_psi(n, omega, q);
    let field = modmath::prime::NttField::with_psi(n, q, psi).expect("validated params");
    let plan = ntt_ref::plan::NttPlan::new(field);
    let mut v = x.to_vec();
    plan.forward(&mut v);
    v
}

/// Finds a primitive 2N-th root ψ with ψ² = ω. Writing ω = ψ0^e for a
/// primitive 2N-th root ψ0, the exponent e is even (ω has order N), and
/// the two square roots of ω are ψ0^(e/2) and ψ0^(e/2 + N); at least one
/// has full order 2N.
fn matching_psi(n: usize, omega: u64, q: u64) -> u64 {
    let psi0 = modmath::prime::root_of_unity(2 * n as u64, q).expect("2N | q-1");
    let mut p = 1u64;
    for e in 0..(2 * n as u64) {
        if p == omega {
            debug_assert_eq!(e % 2, 0, "ω of order N has an even discrete log");
            let mut psi = modmath::arith::pow_mod(psi0, e / 2, q);
            if !modmath::prime::is_primitive_root_of_unity(psi, 2 * n as u64, q) {
                psi = modmath::arith::pow_mod(psi0, e / 2 + n as u64, q);
            }
            return psi;
        }
        p = modmath::arith::mul_mod(p, psi0, q);
    }
    unreachable!("ω is a power of any primitive 2N-th root")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler;

    #[test]
    fn batched_offload_is_faster_than_sequential() {
        let params = RlweParams::new(256, 3, 16).unwrap();
        let mut poly = RnsPoly::zero(&params);
        for i in 0..3 {
            poly.set_residues(i, sampler::uniform(256, params.moduli()[i], 42 + i as u64));
        }
        let config = PimConfig::hbm2e(2).with_banks(4);
        let report = ntt_all_components(&params, &poly, &config).unwrap();
        assert_eq!(report.transforms, 3);
        assert!(
            report.speedup() > 2.0,
            "3 banks should be >2x sequential, got {:.2}",
            report.speedup()
        );
    }

    #[test]
    fn too_few_banks_rejected() {
        let params = RlweParams::new(64, 2, 16).unwrap();
        let poly = RnsPoly::zero(&params);
        let config = PimConfig::hbm2e(2); // 1 bank
        assert!(ntt_all_components(&params, &poly, &config).is_err());
    }

    #[test]
    fn on_device_rns_multiplication_matches_cpu() {
        let params = RlweParams::new(256, 2, 16).unwrap();
        let mut a = RnsPoly::zero(&params);
        let mut b = RnsPoly::zero(&params);
        for i in 0..2 {
            a.set_residues(i, sampler::uniform(256, params.moduli()[i], 1 + i as u64));
            b.set_residues(i, sampler::uniform(256, params.moduli()[i], 9 + i as u64));
        }
        let config = PimConfig::hbm2e(4).with_banks(2);
        let (got, report) = polymul_all_components(&params, &a, &b, &config).unwrap();
        assert!(report.latency_ns > 0.0);
        let expect = a.mul(&b, &params).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn more_components_than_banks_queue_up() {
        // 5 RNS components on a 2-bank device: the queue-based batch path
        // packs 3+2 and still matches the CPU product exactly.
        let params = RlweParams::new(128, 5, 16).unwrap();
        let mut a = RnsPoly::zero(&params);
        let mut b = RnsPoly::zero(&params);
        for i in 0..5 {
            a.set_residues(i, sampler::uniform(128, params.moduli()[i], 3 + i as u64));
            b.set_residues(i, sampler::uniform(128, params.moduli()[i], 11 + i as u64));
        }
        let config = PimConfig::hbm2e(4).with_banks(2);
        let (got, report) = polymul_all_components(&params, &a, &b, &config).unwrap();
        assert_eq!(got, a.mul(&b, &params).unwrap());
        assert_eq!(report.job_end_ns[0].len(), 3);
        assert_eq!(report.job_end_ns[1].len(), 2);
        // Asynchronous drain: the deeper queue finishes later, and the
        // batch ends with the slowest bank.
        assert!(report.per_bank_ns[0] > report.per_bank_ns[1]);
        assert!((report.latency_ns - report.per_bank_ns[0]).abs() < 1e-9);
    }

    #[test]
    fn matching_psi_squares_to_omega() {
        for n in [64usize, 256] {
            let q = modmath::prime::find_ntt_prime(2 * n as u64, 31).unwrap();
            let omega = modmath::prime::root_of_unity(n as u64, q).unwrap();
            let psi = matching_psi(n, omega, q);
            assert_eq!(modmath::arith::mul_mod(psi, psi, q), omega);
            assert!(modmath::prime::is_primitive_root_of_unity(
                psi,
                2 * n as u64,
                q
            ));
        }
    }
}
