//! A deliberately small RLWE/BFV layer providing the FHE workload that
//! motivates NTT-PIM (paper §I–II: "we target Fully Homomorphic
//! Encryption, where the most important function is NTT").
//!
//! **Not secure, not constant-time, toy parameters** — the point is the
//! *NTT call pattern*: every encrypt/decrypt/multiply is a handful of
//! negacyclic polynomial products, each of which is NTTs plus pointwise
//! work, and with RNS (residue number system) representation those NTTs
//! are independent per modulus — exactly the bank-level parallelism the
//! paper's conclusion anticipates. [`executor`] maps that pattern onto
//! [`ntt_pim_core::device::PimDevice`].
//!
//! Modules: [`params`] (parameter sets), [`sampler`] (seeded uniform /
//! ternary / centered-binomial), [`rns`] (RNS polynomials with CRT
//! reconstruction), [`bfv`] (textbook BFV-style encrypt / decrypt /
//! homomorphic add / plaintext multiply), [`noise`] (noise-budget
//! analysis), [`executor`] (PIM offload).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfv;
pub mod executor;
pub mod noise;
pub mod params;
pub mod rns;
pub mod sampler;

mod error;

pub use error::FheError;
