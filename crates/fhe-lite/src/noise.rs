//! Noise-budget measurement for the toy BFV scheme.
//!
//! BFV decryption computes `c0 + c1·s = Δ·m + e` and succeeds while
//! `|e| < Δ/2`. The *noise budget* — how many bits of headroom remain —
//! is the quantity FHE applications track to decide when they must stop
//! (or bootstrap): every homomorphic operation spends some of it. The
//! workload implication for PIM is that deeper circuits mean more
//! polynomial products per useful result, i.e. even more NTTs.

use crate::bfv::{Ciphertext, SecretKey};
use crate::params::RlweParams;
use crate::FheError;

/// Noise measurement of one ciphertext against the secret key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseReport {
    /// Largest absolute noise value across coefficients.
    pub max_noise: u128,
    /// The decryption bound `Δ/2`; decryption fails at or above it.
    pub bound: u128,
    /// Remaining budget in bits: `log2(bound / max_noise)` (0 when
    /// exhausted).
    pub budget_bits: f64,
}

impl NoiseReport {
    /// Whether the ciphertext still decrypts correctly.
    pub fn decryptable(&self) -> bool {
        self.max_noise < self.bound
    }
}

/// Measures the exact noise of `ct` (requires the secret key; this is a
/// *debug/analysis* facility, as in real FHE libraries).
///
/// # Errors
///
/// Propagates RNS reconstruction errors.
pub fn measure(
    params: &RlweParams,
    sk: &SecretKey,
    ct: &Ciphertext,
    m: &[u64],
) -> Result<NoiseReport, FheError> {
    let inner = ct.inner_product(params, sk)?;
    let wide = inner.reconstruct(params)?;
    let q = params.q_full();
    let delta = params.delta();
    let mut max_noise: u128 = 0;
    for (i, &c) in wide.iter().enumerate() {
        // e = (c0 + c1 s) - Δ·m  (centered representative).
        let expected = delta * m[i] as u128 % q;
        let diff = if c >= expected {
            c - expected
        } else {
            c + q - expected
        };
        let centered = diff.min(q - diff);
        max_noise = max_noise.max(centered);
    }
    let bound = delta / 2;
    let budget_bits = if max_noise == 0 {
        (bound as f64).log2()
    } else if max_noise >= bound {
        0.0
    } else {
        (bound as f64 / max_noise as f64).log2()
    };
    Ok(NoiseReport {
        max_noise,
        bound,
        budget_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfv;
    use crate::sampler;

    fn setup() -> (RlweParams, SecretKey, crate::bfv::PublicKey) {
        let p = RlweParams::new(256, 2, 16).unwrap();
        let (sk, pk) = bfv::keygen(&p, 7).unwrap();
        (p, sk, pk)
    }

    #[test]
    fn fresh_ciphertext_has_large_budget() {
        let (p, sk, pk) = setup();
        let m = sampler::plaintext(p.n(), p.t(), 1);
        let ct = bfv::encrypt(&p, &pk, &m, 2).unwrap();
        let r = measure(&p, &sk, &ct, &m).unwrap();
        assert!(r.decryptable());
        assert!(r.budget_bits > 20.0, "budget {:.1} bits", r.budget_bits);
    }

    #[test]
    fn operations_consume_budget() {
        let (p, sk, pk) = setup();
        let m = sampler::plaintext(p.n(), p.t(), 3);
        let ct = bfv::encrypt(&p, &pk, &m, 4).unwrap();
        let fresh = measure(&p, &sk, &ct, &m).unwrap();

        // Addition roughly doubles noise (one bit of budget).
        let sum = bfv::add(&p, &ct, &ct).unwrap();
        let m2: Vec<u64> = m.iter().map(|&x| 2 * x % p.t()).collect();
        let after_add = measure(&p, &sk, &sum, &m2).unwrap();
        assert!(after_add.max_noise >= fresh.max_noise);
        assert!(after_add.budget_bits <= fresh.budget_bits);

        // Plaintext multiplication costs substantially more.
        let pt = sampler::plaintext(p.n(), p.t(), 5);
        let prod = bfv::mul_plain(&p, &ct, &pt).unwrap();
        let mprod = {
            // m * pt in R_t (negacyclic).
            let a: Vec<u64> = m.clone();
            let b: Vec<u64> = pt.clone();
            ntt_ref::naive::negacyclic_convolution(&a, &b, p.t())
        };
        let after_mul = measure(&p, &sk, &prod, &mprod).unwrap();
        assert!(after_mul.budget_bits < fresh.budget_bits);
        assert!(after_mul.decryptable(), "toy parameters keep one level");
    }
}
