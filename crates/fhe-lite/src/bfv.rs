//! Textbook BFV-style encryption (toy; see the crate warning).
//!
//! Implements key generation, encryption, decryption, homomorphic
//! addition/subtraction, and ciphertext-by-plaintext multiplication —
//! enough to generate realistic NTT traffic (every operation is built on
//! negacyclic polynomial products). Full ciphertext-ciphertext
//! multiplication with relinearization is out of scope (it needs tensored
//! moduli and key switching, none of which changes the NTT call pattern
//! this crate exists to produce).

use crate::params::RlweParams;
use crate::rns::RnsPoly;
use crate::sampler;
use crate::FheError;

/// Secret key: a ternary polynomial `s`.
#[derive(Debug, Clone)]
pub struct SecretKey {
    s: RnsPoly,
}

/// Public key: `(b, a)` with `b = -(a·s + e)`.
#[derive(Debug, Clone)]
pub struct PublicKey {
    b: RnsPoly,
    a: RnsPoly,
}

/// A BFV ciphertext `(c0, c1)` with `c0 + c1·s ≈ Δ·m`.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    c0: RnsPoly,
    c1: RnsPoly,
}

impl Ciphertext {
    /// Computes `c0 + c1·s` — the decryption inner product, exposed for
    /// noise analysis ([`crate::noise`]).
    ///
    /// # Errors
    ///
    /// Propagates RNS arithmetic errors.
    pub fn inner_product(&self, params: &RlweParams, sk: &SecretKey) -> Result<RnsPoly, FheError> {
        self.c0.add(&self.c1.mul(&sk.s, params)?, params)
    }
}

/// Key generation with an explicit seed.
///
/// # Errors
///
/// Propagates RNS arithmetic errors (parameter mismatches cannot occur
/// here in practice).
pub fn keygen(params: &RlweParams, seed: u64) -> Result<(SecretKey, PublicKey), FheError> {
    let n = params.n();
    // Sample small polynomials once; encode the *signed* values per
    // modulus (q-1 representing -1 must be per-q, so sample in signed form
    // first).
    let s_signed = signed_ternary(n, seed);
    let e_signed = signed_cbd(n, 2, seed ^ 0x9e37_79b9_7f4a_7c15);
    let s = encode_signed(params, &s_signed);
    let e = encode_signed(params, &e_signed);
    let a = uniform_rns(params, seed ^ 0x5851_f42d_4c95_7f2d);
    // b = -(a·s + e)
    let as_ = a.mul(&s, params)?;
    let b = RnsPoly::zero(params).sub(&as_.add(&e, params)?, params)?;
    Ok((SecretKey { s }, PublicKey { b, a }))
}

/// Encrypts a plaintext polynomial (coefficients `< t`).
///
/// # Errors
///
/// [`FheError::BadParams`] for out-of-range plaintext coefficients.
pub fn encrypt(
    params: &RlweParams,
    pk: &PublicKey,
    m: &[u64],
    seed: u64,
) -> Result<Ciphertext, FheError> {
    if m.len() != params.n() || m.iter().any(|&c| c >= params.t()) {
        return Err(FheError::BadParams {
            reason: "plaintext must have N coefficients below t".into(),
        });
    }
    let n = params.n();
    let u = encode_signed(params, &signed_ternary(n, seed));
    let e1 = encode_signed(params, &signed_cbd(n, 2, seed ^ 0xa076_1d64_78bd_642f));
    let e2 = encode_signed(params, &signed_cbd(n, 2, seed ^ 0xe703_7ed1_a0b4_28db));
    // Δ·m encoded with full-width coefficients.
    let delta = params.delta();
    let dm: Vec<u128> = m.iter().map(|&c| delta * c as u128).collect();
    let dm = RnsPoly::encode(params, &dm);
    let c0 = pk.b.mul(&u, params)?.add(&e1, params)?.add(&dm, params)?;
    let c1 = pk.a.mul(&u, params)?.add(&e2, params)?;
    Ok(Ciphertext { c0, c1 })
}

/// Decrypts a ciphertext, rounding `(t/q)·(c0 + c1·s)` per coefficient.
///
/// # Errors
///
/// Propagates RNS errors.
pub fn decrypt(params: &RlweParams, sk: &SecretKey, ct: &Ciphertext) -> Result<Vec<u64>, FheError> {
    let inner = ct.inner_product(params, sk)?;
    let wide = inner.reconstruct(params)?;
    let q = params.q_full();
    let t = params.t() as u128;
    Ok(wide
        .into_iter()
        .map(|c| {
            // round(t*c/q) mod t, with the multiplication split to avoid
            // overflowing u128 (c < q < 2^124, t small).
            let scaled = (c / q) * t + ((c % q) * t + q / 2) / q;
            (scaled % t) as u64
        })
        .collect())
}

/// Homomorphic addition.
///
/// # Errors
///
/// [`FheError::ParamMismatch`] on mismatched ciphertexts.
pub fn add(params: &RlweParams, x: &Ciphertext, y: &Ciphertext) -> Result<Ciphertext, FheError> {
    Ok(Ciphertext {
        c0: x.c0.add(&y.c0, params)?,
        c1: x.c1.add(&y.c1, params)?,
    })
}

/// Homomorphic subtraction.
///
/// # Errors
///
/// [`FheError::ParamMismatch`] on mismatched ciphertexts.
pub fn sub(params: &RlweParams, x: &Ciphertext, y: &Ciphertext) -> Result<Ciphertext, FheError> {
    Ok(Ciphertext {
        c0: x.c0.sub(&y.c0, params)?,
        c1: x.c1.sub(&y.c1, params)?,
    })
}

/// Ciphertext-by-plaintext multiplication (`pt` coefficients `< t`,
/// treated as a small signless polynomial).
///
/// # Errors
///
/// [`FheError::BadParams`] for out-of-range plaintext coefficients.
pub fn mul_plain(params: &RlweParams, ct: &Ciphertext, pt: &[u64]) -> Result<Ciphertext, FheError> {
    if pt.len() != params.n() || pt.iter().any(|&c| c >= params.t()) {
        return Err(FheError::BadParams {
            reason: "plaintext must have N coefficients below t".into(),
        });
    }
    let p = RnsPoly::encode_small(params, pt);
    Ok(Ciphertext {
        c0: ct.c0.mul(&p, params)?,
        c1: ct.c1.mul(&p, params)?,
    })
}

fn signed_ternary(n: usize, seed: u64) -> Vec<i64> {
    sampler::ternary(n, 3, seed)
        .into_iter()
        .map(|c| match c {
            0 => 0,
            1 => 1,
            _ => -1,
        })
        .collect()
}

fn signed_cbd(n: usize, eta: u32, seed: u64) -> Vec<i64> {
    let big = 1u64 << 32;
    sampler::centered_binomial(n, big, eta, seed)
        .into_iter()
        .map(|c| {
            if c > big / 2 {
                c as i64 - big as i64
            } else {
                c as i64
            }
        })
        .collect()
}

fn encode_signed(params: &RlweParams, signed: &[i64]) -> RnsPoly {
    let q = params.q_full();
    let wide: Vec<u128> = signed
        .iter()
        .map(|&c| {
            if c >= 0 {
                c as u128 % q
            } else {
                q - ((-c) as u128 % q)
            }
        })
        .collect();
    RnsPoly::encode(params, &wide)
}

fn uniform_rns(params: &RlweParams, seed: u64) -> RnsPoly {
    // Independent uniform residues per modulus are exactly uniform mod q
    // by CRT.
    let mut poly = RnsPoly::zero(params);
    for (i, &q) in params.moduli().iter().enumerate() {
        poly.set_residues(i, sampler::uniform(params.n(), q, seed ^ (i as u64) << 32));
    }
    poly
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RlweParams {
        RlweParams::new(256, 2, 16).unwrap()
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let p = params();
        let (sk, pk) = keygen(&p, 1).unwrap();
        let m = sampler::plaintext(p.n(), p.t(), 2);
        let ct = encrypt(&p, &pk, &m, 3).unwrap();
        assert_eq!(decrypt(&p, &sk, &ct).unwrap(), m);
    }

    #[test]
    fn homomorphic_addition() {
        let p = params();
        let (sk, pk) = keygen(&p, 10).unwrap();
        let m1 = sampler::plaintext(p.n(), p.t(), 11);
        let m2 = sampler::plaintext(p.n(), p.t(), 12);
        let ct = add(
            &p,
            &encrypt(&p, &pk, &m1, 13).unwrap(),
            &encrypt(&p, &pk, &m2, 14).unwrap(),
        )
        .unwrap();
        let got = decrypt(&p, &sk, &ct).unwrap();
        for i in 0..p.n() {
            assert_eq!(got[i], (m1[i] + m2[i]) % p.t());
        }
    }

    #[test]
    fn homomorphic_subtraction() {
        let p = params();
        let (sk, pk) = keygen(&p, 20).unwrap();
        let m1 = sampler::plaintext(p.n(), p.t(), 21);
        let m2 = sampler::plaintext(p.n(), p.t(), 22);
        let ct = sub(
            &p,
            &encrypt(&p, &pk, &m1, 23).unwrap(),
            &encrypt(&p, &pk, &m2, 24).unwrap(),
        )
        .unwrap();
        let got = decrypt(&p, &sk, &ct).unwrap();
        for i in 0..p.n() {
            assert_eq!(got[i], (m1[i] + p.t() - m2[i]) % p.t());
        }
    }

    #[test]
    fn plaintext_multiplication_by_monomial() {
        // Multiplying by X rotates coefficients negacyclically; small
        // noise growth keeps decryption exact.
        let p = params();
        let (sk, pk) = keygen(&p, 30).unwrap();
        let m = sampler::plaintext(p.n(), p.t(), 31);
        let mut x = vec![0u64; p.n()];
        x[1] = 1;
        let ct = mul_plain(&p, &encrypt(&p, &pk, &m, 32).unwrap(), &x).unwrap();
        let got = decrypt(&p, &sk, &ct).unwrap();
        // X·m: coefficient i+1 = m[i]; constant term = -m[N-1] = t - m.
        assert_eq!(got[0], (p.t() - m[p.n() - 1]) % p.t());
        for i in 1..p.n() {
            assert_eq!(got[i], m[i - 1]);
        }
    }

    #[test]
    fn rejects_oversized_plaintext() {
        let p = params();
        let (_, pk) = keygen(&p, 40).unwrap();
        let bad = vec![p.t(); p.n()];
        assert!(encrypt(&p, &pk, &bad, 41).is_err());
    }
}
