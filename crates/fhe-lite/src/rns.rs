//! RNS (residue number system) polynomials over `R_q = Z_q[X]/(X^N + 1)`.
//!
//! A coefficient vector mod `q = Π qᵢ` is held as its residues mod each
//! `qᵢ`; ring operations act per-residue (and per-residue multiplication
//! is a negacyclic NTT product — the independent-NTT workload the PIM
//! executor fans out across banks). CRT reconstruction recovers the full
//! coefficients for decryption-side rounding.

use crate::params::RlweParams;
use crate::FheError;
use modmath::arith::{add_mod, inv_mod, mul_mod, sub_mod};

/// A polynomial in RNS form: `residues[i][j]` = coefficient `j` mod `qᵢ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsPoly {
    residues: Vec<Vec<u64>>,
}

impl RnsPoly {
    /// Encodes full-range coefficients (`< q`) into RNS form.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != params.n()`.
    pub fn encode(params: &RlweParams, coeffs: &[u128]) -> Self {
        assert_eq!(coeffs.len(), params.n(), "length mismatch");
        let residues = params
            .moduli()
            .iter()
            .map(|&q| coeffs.iter().map(|&c| (c % q as u128) as u64).collect())
            .collect();
        Self { residues }
    }

    /// Encodes small (already reduced per-modulus-agnostic) coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != params.n()`.
    pub fn encode_small(params: &RlweParams, coeffs: &[u64]) -> Self {
        let wide: Vec<u128> = coeffs.iter().map(|&c| c as u128).collect();
        Self::encode(params, &wide)
    }

    /// The zero polynomial.
    pub fn zero(params: &RlweParams) -> Self {
        Self {
            residues: params
                .moduli()
                .iter()
                .map(|_| vec![0u64; params.n()])
                .collect(),
        }
    }

    /// Residues for modulus index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn residues(&self, i: usize) -> &[u64] {
        &self.residues[i]
    }

    /// Number of RNS components.
    pub fn components(&self) -> usize {
        self.residues.len()
    }

    /// Replaces component `i` (used by the PIM offload path, which
    /// computes per-modulus products on-device).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the length differs.
    pub fn set_residues(&mut self, i: usize, data: Vec<u64>) {
        assert_eq!(data.len(), self.residues[i].len(), "length mismatch");
        self.residues[i] = data;
    }

    /// Coefficient-wise addition.
    ///
    /// # Errors
    ///
    /// [`FheError::ParamMismatch`] on component-count mismatch.
    pub fn add(&self, other: &Self, params: &RlweParams) -> Result<Self, FheError> {
        self.zip(other, params, add_mod)
    }

    /// Coefficient-wise subtraction.
    ///
    /// # Errors
    ///
    /// [`FheError::ParamMismatch`] on component-count mismatch.
    pub fn sub(&self, other: &Self, params: &RlweParams) -> Result<Self, FheError> {
        self.zip(other, params, sub_mod)
    }

    /// Negacyclic product via per-modulus NTTs.
    ///
    /// Each component multiply runs [`ntt_ref::poly::mul_negacyclic`] on
    /// the shared Shoup-lazy datapath — RNS moduli are ~31-bit, well
    /// inside the `q < 2⁶²` lazy bound, so all three transforms per
    /// component use one Shoup multiply per butterfly instead of a
    /// 128-bit remainder.
    ///
    /// # Errors
    ///
    /// [`FheError::ParamMismatch`] on component-count mismatch.
    pub fn mul(&self, other: &Self, params: &RlweParams) -> Result<Self, FheError> {
        if self.components() != other.components() || self.components() != params.moduli().len() {
            return Err(FheError::ParamMismatch);
        }
        let residues = params
            .plans()
            .iter()
            .enumerate()
            .map(|(i, plan)| {
                ntt_ref::poly::mul_negacyclic(plan, &self.residues[i], &other.residues[i])
            })
            .collect();
        Ok(Self { residues })
    }

    /// CRT reconstruction of the full coefficients in `[0, q)`.
    ///
    /// Uses Garner's mixed-radix algorithm; supports up to four ~31-bit
    /// moduli within `u128`.
    ///
    /// # Errors
    ///
    /// [`FheError::ParamMismatch`] on component-count mismatch.
    pub fn reconstruct(&self, params: &RlweParams) -> Result<Vec<u128>, FheError> {
        if self.components() != params.moduli().len() {
            return Err(FheError::ParamMismatch);
        }
        let moduli = params.moduli();
        let n = params.n();
        // Precompute mixed-radix constants: inv[i][j] = qⱼ⁻¹ mod qᵢ (j<i).
        let mut out = vec![0u128; n];
        for (c, slot) in out.iter_mut().enumerate() {
            // Garner: v₀ = r₀; vᵢ = (rᵢ - partial) * Πq_j⁻¹ mod qᵢ.
            let mut mixed = Vec::with_capacity(moduli.len());
            for (i, &qi) in moduli.iter().enumerate() {
                let mut v = self.residues[i][c] % qi;
                for (j, &mj) in mixed.iter().enumerate().take(i) {
                    // v = (v - mj) / qj mod qi
                    let qj = moduli[j];
                    let inv = inv_mod(qj % qi, qi).expect("distinct primes are coprime");
                    v = mul_mod(sub_mod(v, mj % qi, qi), inv, qi);
                }
                mixed.push(v);
            }
            // Value = Σ mixedᵢ · Π_{j<i} qⱼ.
            let mut value: u128 = 0;
            let mut radix: u128 = 1;
            for (i, &m) in mixed.iter().enumerate() {
                value += m as u128 * radix;
                radix *= moduli[i] as u128;
            }
            *slot = value;
        }
        Ok(out)
    }

    fn zip(
        &self,
        other: &Self,
        params: &RlweParams,
        f: fn(u64, u64, u64) -> u64,
    ) -> Result<Self, FheError> {
        if self.components() != other.components() || self.components() != params.moduli().len() {
            return Err(FheError::ParamMismatch);
        }
        let residues = self
            .residues
            .iter()
            .zip(&other.residues)
            .zip(params.moduli())
            .map(|((a, b), &q)| a.iter().zip(b).map(|(&x, &y)| f(x, y, q)).collect())
            .collect();
        Ok(Self { residues })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RlweParams {
        RlweParams::new(64, 2, 16).unwrap()
    }

    #[test]
    fn encode_reconstruct_roundtrip() {
        let p = params();
        let q = p.q_full();
        let coeffs: Vec<u128> = (0..64u128).map(|i| (i * 12345678901 + 7) % q).collect();
        let poly = RnsPoly::encode(&p, &coeffs);
        assert_eq!(poly.reconstruct(&p).unwrap(), coeffs);
    }

    #[test]
    fn add_matches_wide_arithmetic() {
        let p = params();
        let q = p.q_full();
        let a: Vec<u128> = (0..64u128).map(|i| (i * 99991 + 5) % q).collect();
        let b: Vec<u128> = (0..64u128).map(|i| (i * 77777 + 3) % q).collect();
        let ra = RnsPoly::encode(&p, &a);
        let rb = RnsPoly::encode(&p, &b);
        let sum = ra.add(&rb, &p).unwrap().reconstruct(&p).unwrap();
        for i in 0..64 {
            assert_eq!(sum[i], (a[i] + b[i]) % q);
        }
    }

    #[test]
    fn mul_matches_schoolbook_negacyclic_per_modulus() {
        let p = params();
        let a: Vec<u64> = (0..64).map(|i| i * 3 + 1).collect();
        let b: Vec<u64> = (0..64).map(|i| i + 2).collect();
        let ra = RnsPoly::encode_small(&p, &a);
        let rb = RnsPoly::encode_small(&p, &b);
        let prod = ra.mul(&rb, &p).unwrap();
        for (i, &q) in p.moduli().iter().enumerate() {
            let am: Vec<u64> = a.iter().map(|&x| x % q).collect();
            let bm: Vec<u64> = b.iter().map(|&x| x % q).collect();
            let expect = ntt_ref::naive::negacyclic_convolution(&am, &bm, q);
            assert_eq!(prod.residues(i), expect.as_slice(), "modulus {q}");
        }
    }

    #[test]
    fn component_plans_ride_the_lazy_datapath() {
        let p = params();
        for (plan, &q) in p.plans().iter().zip(p.moduli()) {
            assert!(modmath::shoup::supports(q));
            assert!(plan.uses_lazy(), "q={q}");
        }
    }

    #[test]
    fn mismatched_components_rejected() {
        let p2 = params();
        let p3 = RlweParams::new(64, 3, 16).unwrap();
        let a = RnsPoly::zero(&p2);
        let b = RnsPoly::zero(&p3);
        assert!(a.add(&b, &p2).is_err());
        assert!(a.reconstruct(&p3).is_err());
    }

    #[test]
    fn three_component_reconstruction() {
        let p = RlweParams::new(64, 3, 16).unwrap();
        let q = p.q_full();
        let coeffs: Vec<u128> = (0..64u128)
            .map(|i| (q - 1 - i * 1_000_000_007) % q)
            .collect();
        let poly = RnsPoly::encode(&p, &coeffs);
        assert_eq!(poly.reconstruct(&p).unwrap(), coeffs);
    }
}
