use std::fmt;

/// Errors of the toy FHE layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FheError {
    /// Parameter construction failed.
    BadParams {
        /// What was wrong.
        reason: String,
    },
    /// Operands belong to different parameter sets.
    ParamMismatch,
    /// An underlying modular-arithmetic error.
    Math(modmath::Error),
    /// An underlying PIM error (offload path).
    Pim(ntt_pim_core::PimError),
}

impl fmt::Display for FheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FheError::BadParams { reason } => write!(f, "bad parameters: {reason}"),
            FheError::ParamMismatch => write!(f, "operands use different parameter sets"),
            FheError::Math(e) => write!(f, "modular arithmetic: {e}"),
            FheError::Pim(e) => write!(f, "pim: {e}"),
        }
    }
}

impl std::error::Error for FheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FheError::Math(e) => Some(e),
            FheError::Pim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<modmath::Error> for FheError {
    fn from(e: modmath::Error) -> Self {
        FheError::Math(e)
    }
}

impl From<ntt_pim_core::PimError> for FheError {
    fn from(e: ntt_pim_core::PimError) -> Self {
        FheError::Pim(e)
    }
}
