//! Property-based tests of the reference transforms: roundtrips,
//! algebraic identities (linearity, convolution theorem, Parseval-style
//! evaluation), and cross-dataflow agreement on arbitrary inputs and
//! arbitrary valid `(N, q)` draws.

use modmath::arith::{add_mod, mul_mod, pow_mod};
use modmath::prime::NttField;
use ntt_ref::plan::NttPlan;
use proptest::prelude::*;

/// Draws a transform size and a compatible prime field, plus a seed.
fn field_strategy() -> impl Strategy<Value = (NttPlan, u64)> {
    (2u32..=9, 0u64..u64::MAX).prop_map(|(log_n, seed)| {
        let n = 1usize << log_n;
        let field = NttField::with_bits(n, 28).expect("field exists");
        (NttPlan::new(field), seed)
    })
}

fn random_poly(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) % q
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forward_inverse_roundtrip((plan, seed) in field_strategy()) {
        let x = random_poly(plan.n(), plan.modulus(), seed);
        let mut v = x.clone();
        plan.forward(&mut v);
        plan.inverse(&mut v);
        prop_assert_eq!(v, x);
    }

    #[test]
    fn negacyclic_roundtrip((plan, seed) in field_strategy()) {
        let x = random_poly(plan.n(), plan.modulus(), seed);
        let mut v = x.clone();
        plan.forward_negacyclic(&mut v);
        plan.inverse_negacyclic(&mut v);
        prop_assert_eq!(v, x);
    }

    #[test]
    fn linearity((plan, seed) in field_strategy(), c in 1u64..1000) {
        let q = plan.modulus();
        let n = plan.n();
        let a = random_poly(n, q, seed);
        let b = random_poly(n, q, seed ^ 0xdead_beef);
        let c = c % q;
        // NTT(c*a + b) = c*NTT(a) + NTT(b)
        let mut lhs: Vec<u64> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| add_mod(mul_mod(c, x, q), y, q))
            .collect();
        plan.forward(&mut lhs);
        let mut ta = a;
        let mut tb = b;
        plan.forward(&mut ta);
        plan.forward(&mut tb);
        for k in 0..n {
            prop_assert_eq!(lhs[k], add_mod(mul_mod(c, ta[k], q), tb[k], q));
        }
    }

    #[test]
    fn first_output_is_coefficient_sum((plan, seed) in field_strategy()) {
        let q = plan.modulus();
        let x = random_poly(plan.n(), q, seed);
        let sum = x.iter().fold(0u64, |acc, &v| add_mod(acc, v, q));
        let mut v = x;
        plan.forward(&mut v);
        prop_assert_eq!(v[0], sum, "X[0] = Σ x[n]");
    }

    #[test]
    fn transform_is_evaluation_at_root_powers((plan, seed) in field_strategy(), k in 0usize..16) {
        let q = plan.modulus();
        let n = plan.n();
        let k = k % n;
        let x = random_poly(n, q, seed);
        // X[k] = x(ω^k) — evaluate by Horner.
        let wk = pow_mod(plan.field().root_of_unity(), k as u64, q);
        let horner = x.iter().rev().fold(0u64, |acc, &c| {
            add_mod(mul_mod(acc, wk, q), c, q)
        });
        let mut v = x;
        plan.forward(&mut v);
        prop_assert_eq!(v[k], horner);
    }

    #[test]
    fn convolution_theorem_cyclic((plan, seed) in field_strategy()) {
        let q = plan.modulus();
        let a = random_poly(plan.n(), q, seed);
        let b = random_poly(plan.n(), q, seed ^ 0x1234_5678);
        let fast = ntt_ref::poly::mul_cyclic(&plan, &a, &b);
        let slow = ntt_ref::naive::cyclic_convolution(&a, &b, q);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn convolution_theorem_negacyclic((plan, seed) in field_strategy()) {
        let q = plan.modulus();
        let a = random_poly(plan.n(), q, seed);
        let b = random_poly(plan.n(), q, seed ^ 0x8765_4321);
        let fast = ntt_ref::poly::mul_negacyclic(&plan, &a, &b);
        let slow = ntt_ref::naive::negacyclic_convolution(&a, &b, q);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn all_dataflows_agree((plan, seed) in field_strategy()) {
        let x = random_poly(plan.n(), plan.modulus(), seed);
        let mut dit = x.clone();
        plan.forward(&mut dit);
        let mut dif = x.clone();
        ntt_ref::iterative::forward_via_dif(&plan, &mut dif);
        let mut pease = x.clone();
        ntt_ref::pease::forward(&plan, &mut pease);
        let mut stockham = x.clone();
        ntt_ref::stockham::forward(&plan, &mut stockham);
        prop_assert_eq!(&dit, &dif);
        prop_assert_eq!(&dit, &pease);
        prop_assert_eq!(&dit, &stockham);
    }

    #[test]
    fn blocked_agrees_for_any_block((plan, seed) in field_strategy(), log_b in 1u32..8) {
        let block = (1usize << log_b).min(plan.n());
        let x = random_poly(plan.n(), plan.modulus(), seed);
        let mut plain = x.clone();
        plan.forward(&mut plain);
        let mut blocked = x;
        ntt_ref::blocked::forward_blocked(&plan, &mut blocked, block);
        prop_assert_eq!(plain, blocked);
    }
}
