//! Property-based tests of the Shoup/Harvey lazy-reduction datapath:
//! the `[0, 4q)` invariant of every butterfly leg through all stages,
//! agreement of the lazy kernel with the naive negacyclic convolution
//! on random inputs, and the behaviour at the `q < 2⁶²` capability edge
//! (largest lazy prime) and the rejection path just above it.

use modmath::prime::NttField;
use modmath::shoup;
use ntt_ref::plan::NttPlan;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Memoized `NttField::with_bits` — the 62/63-bit prime searches are the
/// expensive part of these properties, and each `(n, bits)` pair is
/// drawn many times across cases.
fn cached_field(n: usize, bits: u32) -> NttField {
    static FIELDS: OnceLock<Mutex<HashMap<(usize, u32), NttField>>> = OnceLock::new();
    let fields = FIELDS.get_or_init(Mutex::default);
    *fields
        .lock()
        .unwrap()
        .entry((n, bits))
        .or_insert_with(|| NttField::with_bits(n, bits).expect("field exists"))
}

fn random_poly(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 1) % q
        })
        .collect()
}

/// A lazy-capable plan across the whole modulus spectrum: small NTT
/// primes up to the largest prime under the `2⁶²` capability edge.
fn lazy_plan_strategy() -> impl Strategy<Value = (NttPlan, u64)> {
    (
        2u32..=7,
        prop::sample::select(vec![14u32, 24, 31, 50, 62]),
        any::<u64>(),
    )
        .prop_map(|(log_n, bits, seed)| (NttPlan::new(cached_field(1usize << log_n, bits)), seed))
}

/// Replays the lazy DIT stages butterfly by butterfly, asserting the
/// Harvey invariant — every leg `< 4q`, every lazy product `< 2q` — at
/// each step, and returns the unnormalized result.
fn lazy_stages_checked(
    plan: &NttPlan,
    data: &mut [u64],
    inverse: bool,
) -> Result<(), TestCaseError> {
    let q = plan.modulus();
    let n = plan.n();
    let two_q = 2 * q;
    for s in 0..plan.log_n() {
        let m = 1usize << s;
        let tws = plan.dit_stage_twiddles(s, inverse);
        let tws_shoup = plan.dit_stage_twiddles_shoup(s, inverse);
        for k in (0..n).step_by(2 * m) {
            for j in 0..m {
                prop_assert!(data[k + j] < 4 * q, "even leg in range at stage {s}");
                prop_assert!(data[k + j + m] < 4 * q, "odd leg in range at stage {s}");
                let u = shoup::reduce_twice(data[k + j], q);
                let t = shoup::mul_lazy(data[k + j + m], tws[j], tws_shoup[j], q);
                prop_assert!(t < two_q, "lazy product < 2q at stage {s}");
                data[k + j] = u + t;
                data[k + j + m] = u + two_q - t;
                prop_assert!(
                    data[k + j] < 4 * q && data[k + j + m] < 4 * q,
                    "outputs < 4q at stage {s}"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lazy_intermediates_stay_below_4q((plan, seed) in lazy_plan_strategy()) {
        let q = plan.modulus();
        let x = random_poly(plan.n(), q, seed);
        for inverse in [false, true] {
            let mut checked = x.clone();
            modmath::bitrev::bitrev_permute(&mut checked);
            lazy_stages_checked(&plan, &mut checked, inverse)?;
            prop_assert!(checked.iter().all(|&v| v < 4 * q), "final values < 4q");
            shoup::normalize(&mut checked, q);
            // The checked replay must equal both the production lazy
            // kernel and the widening ground truth.
            let mut wide = x.clone();
            modmath::bitrev::bitrev_permute(&mut wide);
            ntt_ref::iterative::dit_from_bitrev_widening(&plan, &mut wide, inverse);
            prop_assert_eq!(&checked, &wide);
            let mut lazy = x.clone();
            modmath::bitrev::bitrev_permute(&mut lazy);
            ntt_ref::iterative::dit_from_bitrev(&plan, &mut lazy, inverse);
            prop_assert_eq!(&checked, &lazy);
        }
    }

    #[test]
    fn lazy_negacyclic_matches_naive((plan, seed) in lazy_plan_strategy()) {
        prop_assert!(plan.uses_lazy());
        let q = plan.modulus();
        let a = random_poly(plan.n(), q, seed);
        let b = random_poly(plan.n(), q, seed ^ 0x5a5a_5a5a);
        let fast = ntt_ref::poly::mul_negacyclic(&plan, &a, &b);
        let slow = ntt_ref::naive::negacyclic_convolution(&a, &b, q);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn edge_modulus_takes_lazy_path_and_matches_naive(log_n in 2u32..=6, seed in any::<u64>()) {
        // The largest NTT prime under 2^62 sits right at the capability
        // edge: still lazy, and 4q only just fits in a u64.
        let n = 1usize << log_n;
        let field = cached_field(n, 62);
        let q = field.modulus();
        prop_assert!(shoup::supports(q));
        prop_assert!(q > (1 << 61), "edge prime is a genuine 62-bit value");
        let plan = NttPlan::new(field);
        prop_assert!(plan.uses_lazy());
        let x = random_poly(n, q, seed);
        let mut got = x.clone();
        plan.forward(&mut got);
        prop_assert_eq!(got, ntt_ref::naive::ntt(plan.field(), &x));
        let mut v = x.clone();
        plan.forward_negacyclic(&mut v);
        plan.inverse_negacyclic(&mut v);
        prop_assert_eq!(v, x);
    }

    #[test]
    fn just_above_the_bound_rejects_lazy_and_falls_back(log_n in 2u32..=6, seed in any::<u64>()) {
        // The largest NTT prime under 2^63 exceeds the lazy bound: the
        // capability gate must reject it and the plan must run (and stay
        // correct on) the widening fallback.
        let n = 1usize << log_n;
        let field = cached_field(n, 63);
        let q = field.modulus();
        prop_assert!(q >= shoup::LAZY_MODULUS_BOUND, "search found a 63-bit prime");
        prop_assert!(!shoup::supports(q));
        prop_assert!(shoup::check_modulus(q).is_err());
        let plan = NttPlan::new(field);
        prop_assert!(!plan.uses_lazy());
        prop_assert!(plan.dit_stage_twiddles_shoup(0, false).is_empty());
        let x = random_poly(n, q, seed);
        let mut got = x.clone();
        plan.forward(&mut got);
        prop_assert_eq!(got, ntt_ref::naive::ntt(plan.field(), &x));
    }
}

#[test]
#[should_panic(expected = "lazy bound")]
fn lazy_kernel_refuses_oversized_moduli() {
    // Calling the lazy kernel directly with a > 2^62 modulus must panic
    // rather than silently overflow.
    let plan = NttPlan::new(cached_field(8, 63));
    let mut v = vec![0u64; 8];
    ntt_ref::iterative::dit_from_bitrev_lazy(&plan, &mut v, false);
}
