//! Property-based tests of the lane-batched SoA datapath
//! (`ntt_ref::lanes`): batched outputs bit-identical to the scalar
//! Shoup-lazy kernel across random `(n, q, batch)` shapes including
//! ragged tails, correct behaviour at the 62-bit capability edge, the
//! widening-fallback rejection path just above it, and thread safety of
//! the shared SoA scratch under an 8-thread load.

use modmath::prime::NttField;
use modmath::shoup;
use ntt_ref::lanes::{self, LANE_WIDTH};
use ntt_ref::plan::NttPlan;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Memoized `NttField::with_bits` — the prime searches are the expensive
/// part of these properties, and each `(n, bits)` pair is drawn many
/// times across cases.
fn cached_field(n: usize, bits: u32) -> NttField {
    static FIELDS: OnceLock<Mutex<HashMap<(usize, u32), NttField>>> = OnceLock::new();
    let fields = FIELDS.get_or_init(Mutex::default);
    *fields
        .lock()
        .unwrap()
        .entry((n, bits))
        .or_insert_with(|| NttField::with_bits(n, bits).expect("field exists"))
}

fn random_poly(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 1) % q
        })
        .collect()
}

fn random_batch(count: usize, n: usize, q: u64, seed: u64) -> Vec<Vec<u64>> {
    (0..count)
        .map(|i| random_poly(n, q, seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        .collect()
}

/// A lazy-capable plan across the whole modulus spectrum plus a batch
/// size covering empty groups, exact lane groups, and ragged tails.
fn batch_strategy() -> impl Strategy<Value = (NttPlan, usize, u64)> {
    (
        2u32..=7,
        prop::sample::select(vec![14u32, 24, 31, 50, 62]),
        1usize..=2 * LANE_WIDTH + 3,
        any::<u64>(),
    )
        .prop_map(|(log_n, bits, batch, seed)| {
            (
                NttPlan::new(cached_field(1usize << log_n, bits)),
                batch,
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_transforms_are_bit_identical_to_scalar((plan, batch, seed) in batch_strategy()) {
        prop_assert!(plan.uses_lazy());
        let n = plan.n();
        let q = plan.modulus();
        let orig = random_batch(batch, n, q, seed);
        let full_lanes = (batch / LANE_WIDTH) * LANE_WIDTH;
        type BatchFn = fn(&NttPlan, &mut [Vec<u64>]) -> usize;
        type ScalarFn = fn(&NttPlan, &mut [u64]);
        let legs: [(BatchFn, ScalarFn); 4] = [
            (lanes::forward_batch, |p, v| p.forward(v)),
            (lanes::inverse_batch, |p, v| p.inverse(v)),
            (lanes::forward_negacyclic_batch, |p, v| p.forward_negacyclic(v)),
            (lanes::inverse_negacyclic_batch, |p, v| p.inverse_negacyclic(v)),
        ];
        for (batched, scalar) in legs {
            let mut got = orig.clone();
            // Lane count: every full group rides the kernel, the ragged
            // tail (batch % L) takes the scalar path.
            prop_assert_eq!(batched(&plan, &mut got), full_lanes);
            for (g, poly) in got.iter().zip(&orig) {
                let mut expect = poly.clone();
                scalar(&plan, &mut expect);
                prop_assert_eq!(g, &expect);
            }
        }
    }

    #[test]
    fn batched_polymul_is_bit_identical_to_scalar((plan, batch, seed) in batch_strategy()) {
        let q = plan.modulus();
        let lhs = random_batch(batch, plan.n(), q, seed);
        let rhs = random_batch(batch, plan.n(), q, !seed);
        let mut got = lhs.clone();
        let full_lanes = (batch / LANE_WIDTH) * LANE_WIDTH;
        prop_assert_eq!(lanes::negacyclic_polymul_batch(&plan, &mut got, &rhs), full_lanes);
        for ((g, a), b) in got.iter().zip(&lhs).zip(&rhs) {
            prop_assert_eq!(g, &ntt_ref::poly::mul_negacyclic(&plan, a, b));
        }
    }

    #[test]
    fn edge_modulus_rides_the_lanes_and_roundtrips(log_n in 2u32..=6, seed in any::<u64>()) {
        // The largest NTT prime under 2^62: still lane-capable, and the
        // lazy legs' 4q only just fits in a u64.
        let n = 1usize << log_n;
        let field = cached_field(n, 62);
        let q = field.modulus();
        prop_assert!(q > (1 << 61), "edge prime is a genuine 62-bit value");
        prop_assert!(shoup::supports(q));
        let plan = NttPlan::new(field);
        let orig = random_batch(LANE_WIDTH, n, q, seed);
        let mut batch = orig.clone();
        prop_assert_eq!(lanes::forward_batch(&plan, &mut batch), LANE_WIDTH);
        for (g, poly) in batch.iter().zip(&orig) {
            let mut expect = poly.clone();
            plan.forward(&mut expect);
            prop_assert_eq!(g, &expect);
        }
        prop_assert_eq!(lanes::inverse_batch(&plan, &mut batch), LANE_WIDTH);
        prop_assert_eq!(batch, orig);
    }

    #[test]
    fn oversized_modulus_falls_back_to_scalar(log_n in 2u32..=6, seed in any::<u64>()) {
        // A 63-bit prime exceeds the lazy bound: the batch entry points
        // must report zero lane-processed polynomials and still produce
        // the scalar (widening) results.
        let n = 1usize << log_n;
        let field = cached_field(n, 63);
        let q = field.modulus();
        prop_assert!(!shoup::supports(q));
        let plan = NttPlan::new(field);
        prop_assert!(!plan.uses_lazy());
        let orig = random_batch(LANE_WIDTH + 1, n, q, seed);
        let mut batch = orig.clone();
        prop_assert_eq!(lanes::forward_batch(&plan, &mut batch), 0);
        for (g, poly) in batch.iter().zip(&orig) {
            let mut expect = poly.clone();
            plan.forward(&mut expect);
            prop_assert_eq!(g, &expect);
        }
        let rhs = random_batch(LANE_WIDTH + 1, n, q, !seed);
        let mut lhs = orig.clone();
        prop_assert_eq!(lanes::negacyclic_polymul_batch(&plan, &mut lhs, &rhs), 0);
    }
}

#[test]
#[should_panic(expected = "lazy bound")]
fn raw_soa_legs_refuse_oversized_moduli() {
    // The raw SoA legs are Shoup-only: calling them with a > 2^62
    // modulus must panic rather than silently overflow.
    let plan = NttPlan::new(cached_field(8, 63));
    let mut soa = vec![0u64; 8 * LANE_WIDTH];
    lanes::forward_batch_lazy(&plan, &mut soa);
}

#[test]
fn eight_threads_share_the_soa_scratch_without_interference() {
    // The SoA scratch buffers are thread-local: eight threads hammering
    // the same shared plan concurrently must each see bit-identical
    // results round after round, with every round riding the lane
    // kernel.
    const THREADS: usize = 8;
    const ROUNDS: usize = 50;
    let n = 64;
    let plan = Arc::new(NttPlan::new(cached_field(n, 31)));
    let q = plan.modulus();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let plan = Arc::clone(&plan);
            std::thread::spawn(move || {
                let orig = random_batch(LANE_WIDTH, n, q, 0xC0FFEE ^ t as u64);
                let mut expect = orig.clone();
                assert_eq!(lanes::forward_batch(&plan, &mut expect), LANE_WIDTH);
                for _ in 0..ROUNDS {
                    let mut got = orig.clone();
                    assert_eq!(lanes::forward_batch(&plan, &mut got), LANE_WIDTH);
                    assert_eq!(got, expect, "thread {t} saw a corrupted transform");
                    assert_eq!(lanes::inverse_batch(&plan, &mut got), LANE_WIDTH);
                    assert_eq!(got, orig, "thread {t} failed to roundtrip");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
}
