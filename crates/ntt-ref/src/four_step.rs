//! Four-step (Bailey) NTT decomposition.
//!
//! Splits a size-`N = N₁·N₂` transform into column transforms, a twiddle
//! scaling, row transforms, and a transpose. Included as the standard
//! cache-oblivious alternative the PIM mapping competes against (it moves
//! the whole array four times — more DRAM traffic than the row-centric
//! schedule, which is the quantitative point of the paper's §III.A).
//!
//! The leaf (column/row) transforms are ordinary [`NttPlan`] sub-plans
//! over the same modulus, so they automatically run the Shoup-lazy
//! kernel whenever `q < 2⁶²`. The step-2 twiddle scaling keeps widening
//! multiplies: its `ω^(r·c)` factors vary per element, so there is no
//! constant to precompute a Shoup quotient for.

use crate::plan::NttPlan;
use modmath::arith::{mul_mod, pow_mod};
use modmath::prime::NttField;

/// Forward cyclic NTT, natural order in and out, four-step dataflow.
///
/// `rows` must divide `plan.n()` and both factors must be powers of two
/// `>= 2`.
///
/// # Panics
///
/// Panics on length mismatch or an invalid factorization.
pub fn forward(plan: &NttPlan, data: &mut [u64], rows: usize) {
    let n = plan.n();
    assert_eq!(data.len(), n, "length mismatch");
    assert!(
        rows.is_power_of_two() && rows >= 2 && n % rows == 0 && n / rows >= 2,
        "invalid four-step factorization: {rows} x {}",
        n / rows
    );
    let cols = n / rows;
    let q = plan.modulus();
    let w = plan.field().root_of_unity();

    // Sub-transforms need their own fields sharing q and compatible roots:
    // ω_rows = ω^cols, ω_cols = ω^rows.
    let col_plan = sub_plan(plan.field(), rows, cols);
    let row_plan = sub_plan(plan.field(), cols, rows);

    // Step 1: transform each column (stride = cols in row-major layout).
    let mut scratch = vec![0u64; rows.max(cols)];
    for c in 0..cols {
        for r in 0..rows {
            scratch[r] = data[r * cols + c];
        }
        col_plan.forward(&mut scratch[..rows]);
        for r in 0..rows {
            data[r * cols + c] = scratch[r];
        }
    }
    // Step 2: twiddle scaling by ω^(r*c).
    for r in 0..rows {
        let wr = pow_mod(w, r as u64, q);
        let mut tw = 1u64;
        for c in 0..cols {
            data[r * cols + c] = mul_mod(data[r * cols + c], tw, q);
            tw = mul_mod(tw, wr, q);
        }
    }
    // Step 3: transform each row.
    for r in 0..rows {
        row_plan.forward(&mut data[r * cols..(r + 1) * cols]);
    }
    // Step 4: transpose — output index k = k1 + k2*rows for input (r=k1, c=k2).
    let copy = data.to_vec();
    for r in 0..rows {
        for c in 0..cols {
            data[c * rows + r] = copy[r * cols + c];
        }
    }
}

fn sub_plan(field: &NttField, n_sub: usize, power: usize) -> NttPlan {
    let q = field.modulus();
    // The four-step identity needs ω_sub = ω^power exactly (not whichever
    // root a fresh search would find). ψ^power is the matching primitive
    // 2·n_sub-th root with (ψ^power)² = ω^power.
    let psi_sub = pow_mod(field.psi(), power as u64, q);
    let sub = NttField::with_psi(n_sub, q, psi_sub)
        .expect("a power of a primitive root is primitive for the sub-length");
    NttPlan::new(sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn plan(n: usize) -> NttPlan {
        NttPlan::new(NttField::with_bits(n, 24).expect("field exists"))
    }

    #[test]
    fn matches_naive_square_and_rectangular() {
        for (n, rows) in [(16usize, 4usize), (64, 8), (64, 4), (256, 16), (128, 8)] {
            let p = plan(n);
            let q = p.modulus();
            let x: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 5) % q).collect();
            let expect = naive::ntt(p.field(), &x);
            let mut got = x.clone();
            forward(&p, &mut got, rows);
            assert_eq!(got, expect, "n={n} rows={rows}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid four-step factorization")]
    fn rejects_degenerate_factorization() {
        let p = plan(16);
        let mut x = vec![0u64; 16];
        forward(&p, &mut x, 16); // cols would be 1
    }
}
