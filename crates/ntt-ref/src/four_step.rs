//! Four-step (Bailey) NTT decomposition.
//!
//! Splits a size-`N = N₁·N₂` transform into column transforms, a twiddle
//! scaling, row transforms, and a transpose. On the CPU it is the standard
//! cache-oblivious alternative the PIM mapping competes against; on the
//! device it is the *large-transform datapath*: the same four steps become
//! a DAG of independent column/row sub-jobs fanned across the
//! `channels × ranks × banks` topology (see `engine::batch`'s
//! `JobKind::SplitLarge` and ARCHITECTURE.md "Large-transform splitting").
//!
//! The leaf (column/row) transforms are ordinary [`NttPlan`] sub-plans
//! over the same modulus, so they automatically run the Shoup-lazy
//! kernel whenever `q < 2⁶²`. The step-2 twiddle scaling runs on per-row
//! *on-the-fly Shoup constants* ([`modmath::shoup::GeometricTwiddle`]):
//! along row `r` the factors `ω^(r·c)` are the powers of the fixed step
//! `ω^r`, so one quotient precompute per row feeds an incrementally
//! maintained `(w^c, ⌊w^c·2⁶⁴/q⌋)` pair and every element pays one
//! Shoup-lazy multiply instead of a widening 128-bit remainder.
//!
//! Factorizations are chosen and validated by [`plan_split`], the typed
//! front door every caller (CPU dataflow, device split path, benches)
//! routes through.

use crate::plan::NttPlan;
use modmath::arith::pow_mod;
use modmath::prime::NttField;
use modmath::shoup::scale_geometric;
use std::fmt;

/// A validated `N = rows·cols` four-step factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitPlan {
    /// `N₁`: column-transform length; also the number of row sub-jobs.
    pub rows: usize,
    /// `N₂`: row-transform length; also the number of column sub-jobs.
    pub cols: usize,
}

impl SplitPlan {
    /// The full transform length `rows·cols`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.rows * self.cols
    }

    /// Validates an explicit `n = rows × (n/rows)` factorization.
    ///
    /// # Errors
    ///
    /// The same [`SplitError`]s as [`plan_split`], plus
    /// [`SplitError::BadFactorization`] when `rows` does not yield two
    /// power-of-two factors `≥ 2`.
    pub fn for_factors(n: usize, rows: usize) -> Result<Self, SplitError> {
        if !n.is_power_of_two() {
            return Err(SplitError::NotPowerOfTwo { n });
        }
        if n < 4 {
            return Err(SplitError::TooSmall { n });
        }
        if !rows.is_power_of_two() || rows < 2 || n % rows != 0 || n / rows < 2 {
            return Err(SplitError::BadFactorization { n, rows });
        }
        Ok(Self {
            rows,
            cols: n / rows,
        })
    }
}

impl fmt::Display for SplitPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Why a length cannot be four-step split (the typed replacement for the
/// old assertion panic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitError {
    /// Transform lengths must be powers of two.
    NotPowerOfTwo {
        /// The offending length.
        n: usize,
    },
    /// Both factors must be `≥ 2`, so `n ≥ 4` is required.
    TooSmall {
        /// The offending length.
        n: usize,
    },
    /// An explicitly requested `rows` does not factor `n` into two
    /// power-of-two factors `≥ 2`.
    BadFactorization {
        /// The transform length.
        n: usize,
        /// The requested row count.
        rows: usize,
    },
    /// A topology with zero lanes cannot host any sub-job.
    NoLanes,
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotPowerOfTwo { n } => {
                write!(f, "length {n} is not a power of two")
            }
            Self::TooSmall { n } => {
                write!(f, "length {n} < 4 cannot split into two factors >= 2")
            }
            Self::BadFactorization { n, rows } => {
                let cols = n / (*rows).max(1);
                write!(f, "{rows} x {cols} is not a valid factorization of {n}")
            }
            Self::NoLanes => write!(f, "topology has no lanes to fan sub-jobs across"),
        }
    }
}

impl std::error::Error for SplitError {}

/// Picks an `N₁ × N₂` four-step factorization of `n` for a topology with
/// `lanes` parallel banks.
///
/// The split starts balanced (`rows = 2^⌊log₂n/2⌋ ≤ cols`, minimizing
/// the longer leaf transform) and then shifts toward more columns until
/// the column stage has at least one sub-job per lane (`cols ≥ lanes`) or
/// `rows` would degenerate below 2 — the column stage fans `cols`
/// independent sub-transforms, so it is the stage that must cover the
/// topology. Use `lanes = 1` for a purely host-side split (the CPU
/// four-step dataflow).
///
/// # Errors
///
/// [`SplitError::NoLanes`] for an empty topology,
/// [`SplitError::NotPowerOfTwo`] / [`SplitError::TooSmall`] for lengths
/// no four-step factorization exists for.
///
/// # Example
///
/// ```
/// use ntt_ref::four_step::plan_split;
/// let split = plan_split(32768, 16).unwrap();
/// assert_eq!((split.rows, split.cols), (128, 256));
/// assert!(plan_split(8, 0).is_err());
/// assert!(plan_split(2, 1).is_err());
/// ```
pub fn plan_split(n: usize, lanes: usize) -> Result<SplitPlan, SplitError> {
    if lanes == 0 {
        return Err(SplitError::NoLanes);
    }
    if !n.is_power_of_two() {
        return Err(SplitError::NotPowerOfTwo { n });
    }
    if n < 4 {
        return Err(SplitError::TooSmall { n });
    }
    let log = n.trailing_zeros() as usize;
    let mut rows_log = log / 2;
    while rows_log > 1 && (n >> rows_log) < lanes {
        rows_log -= 1;
    }
    SplitPlan::for_factors(n, 1 << rows_log)
}

/// Forward cyclic NTT, natural order in and out, four-step dataflow.
///
/// `rows` must yield a valid [`SplitPlan`] factorization (two power-of-two
/// factors `≥ 2`); fallible callers should validate through
/// [`plan_split`] / [`SplitPlan::for_factors`] first.
///
/// # Panics
///
/// Panics on length mismatch or an invalid factorization.
pub fn forward(plan: &NttPlan, data: &mut [u64], rows: usize) {
    let n = plan.n();
    assert_eq!(data.len(), n, "length mismatch");
    let split = SplitPlan::for_factors(n, rows)
        .unwrap_or_else(|e| panic!("invalid four-step factorization: {e}"));
    let cols = split.cols;
    let q = plan.modulus();
    let w = plan.field().root_of_unity();

    // Sub-transforms need their own fields sharing q and compatible roots:
    // ω_rows = ω^cols, ω_cols = ω^rows.
    let col_plan = sub_plan(plan.field(), rows, cols);
    let row_plan = sub_plan(plan.field(), cols, rows);

    // Step 1: transform each column (stride = cols in row-major layout).
    let mut scratch = vec![0u64; rows.max(cols)];
    for c in 0..cols {
        for r in 0..rows {
            scratch[r] = data[r * cols + c];
        }
        col_plan.forward(&mut scratch[..rows]);
        for r in 0..rows {
            data[r * cols + c] = scratch[r];
        }
    }
    // Step 2: twiddle scaling by ω^(r*c) — along row r these are the
    // powers of the fixed step ω^r, so the whole row runs on one
    // per-row Shoup quotient precompute (incrementally advanced).
    for r in 0..rows {
        let wr = pow_mod(w, r as u64, q);
        scale_geometric(&mut data[r * cols..(r + 1) * cols], wr, q);
    }
    // Step 3: transform each row.
    for r in 0..rows {
        row_plan.forward(&mut data[r * cols..(r + 1) * cols]);
    }
    // Step 4: transpose — output index k = k1 + k2*rows for input (r=k1, c=k2).
    let copy = data.to_vec();
    for r in 0..rows {
        for c in 0..cols {
            data[c * rows + r] = copy[r * cols + c];
        }
    }
}

fn sub_plan(field: &NttField, n_sub: usize, power: usize) -> NttPlan {
    let q = field.modulus();
    // The four-step identity needs ω_sub = ω^power exactly (not whichever
    // root a fresh search would find). ψ^power is the matching primitive
    // 2·n_sub-th root with (ψ^power)² = ω^power.
    let psi_sub = pow_mod(field.psi(), power as u64, q);
    let sub = NttField::with_psi(n_sub, q, psi_sub)
        .expect("a power of a primitive root is primitive for the sub-length");
    NttPlan::new(sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn plan(n: usize) -> NttPlan {
        NttPlan::new(NttField::with_bits(n, 24).expect("field exists"))
    }

    #[test]
    fn matches_naive_square_and_rectangular() {
        for (n, rows) in [(16usize, 4usize), (64, 8), (64, 4), (256, 16), (128, 8)] {
            let p = plan(n);
            let q = p.modulus();
            let x: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 5) % q).collect();
            let expect = naive::ntt(p.field(), &x);
            let mut got = x.clone();
            forward(&p, &mut got, rows);
            assert_eq!(got, expect, "n={n} rows={rows}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid four-step factorization")]
    fn rejects_degenerate_factorization() {
        let p = plan(16);
        let mut x = vec![0u64; 16];
        forward(&p, &mut x, 16); // cols would be 1
    }

    #[test]
    fn plan_split_balances_then_favors_columns() {
        // Balanced when the topology is already covered.
        assert_eq!(plan_split(64, 1).unwrap(), SplitPlan { rows: 8, cols: 8 });
        assert_eq!(
            plan_split(32768, 16).unwrap(),
            SplitPlan {
                rows: 128,
                cols: 256
            }
        );
        // Lanes exceed the balanced column count: shift toward columns.
        assert_eq!(plan_split(64, 16).unwrap(), SplitPlan { rows: 4, cols: 16 });
        // But never degenerate rows below 2.
        assert_eq!(plan_split(16, 64).unwrap(), SplitPlan { rows: 2, cols: 8 });
    }

    #[test]
    fn plan_split_reports_typed_errors() {
        assert_eq!(plan_split(48, 4), Err(SplitError::NotPowerOfTwo { n: 48 }));
        assert_eq!(plan_split(2, 4), Err(SplitError::TooSmall { n: 2 }));
        assert_eq!(plan_split(1024, 0), Err(SplitError::NoLanes));
        assert_eq!(
            SplitPlan::for_factors(64, 64),
            Err(SplitError::BadFactorization { n: 64, rows: 64 })
        );
        assert_eq!(
            SplitPlan::for_factors(64, 3),
            Err(SplitError::BadFactorization { n: 64, rows: 3 })
        );
        // Every error renders a reason.
        for e in [
            SplitError::NotPowerOfTwo { n: 48 },
            SplitError::TooSmall { n: 2 },
            SplitError::BadFactorization { n: 64, rows: 3 },
            SplitError::NoLanes,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn plan_split_factorizations_transform_correctly() {
        for (n, lanes) in [(256usize, 1usize), (256, 16), (1024, 8), (4096, 64)] {
            let split = plan_split(n, lanes).unwrap();
            let p = plan(n);
            let q = p.modulus();
            let x: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 11) % q).collect();
            let expect = naive::ntt(p.field(), &x);
            let mut got = x.clone();
            forward(&p, &mut got, split.rows);
            assert_eq!(got, expect, "n={n} lanes={lanes} split={split}");
        }
    }
}
