//! Timed CPU baseline — the "x86 CPU (software)" column of the paper's
//! Figs. 7–8 and Table III.
//!
//! The paper compares PIM latency against a software NTT; these helpers run
//! the iterative transform repeatedly on the host and report best-of-k wall
//! time. Absolute values depend on the machine, so the experiment harness
//! prints them next to (not instead of) the paper's published numbers.

use crate::plan::NttPlan;
use modmath::prime::NttField;
use std::time::{Duration, Instant};

/// Result of one timed baseline measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuMeasurement {
    /// Transform length.
    pub n: usize,
    /// Best observed wall time of a single forward transform.
    pub best: Duration,
    /// Mean wall time across the measured iterations.
    pub mean: Duration,
    /// Number of timed iterations.
    pub iterations: u32,
}

impl CpuMeasurement {
    /// Best latency in nanoseconds (saturating at `u64::MAX`).
    pub fn best_ns(&self) -> u64 {
        self.best.as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

/// Times the forward cyclic NTT for length `n`, excluding plan construction
/// (tables are assumed resident, as in any real deployment).
///
/// # Panics
///
/// Panics if no 31-bit NTT-friendly prime exists for `n` (never happens for
/// `n <= 2^20`) or if `iterations == 0`.
pub fn measure_forward(n: usize, iterations: u32) -> CpuMeasurement {
    assert!(iterations > 0, "need at least one iteration");
    let field = NttField::with_bits(n, 31).expect("31-bit NTT prime exists");
    let plan = NttPlan::new(field);
    let q = plan.modulus();
    // analyzer: allow(raw_residue_op) — deterministic benchmark input generator, not datapath math.
    let mut data: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761 + 1) % q).collect();

    // Warm-up: touches tables and data once, and guards against a cold
    // first iteration dominating `best`.
    plan.forward(&mut data);

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iterations {
        let t0 = Instant::now();
        plan.forward(&mut data);
        let dt = t0.elapsed();
        best = best.min(dt);
        total += dt;
        // Keep the data bounded without branching on values: the transform
        // output is already reduced mod q, so nothing to do.
    }
    CpuMeasurement {
        n,
        best,
        mean: total / iterations,
        iterations,
    }
}

/// Convenience sweep over the paper's polynomial lengths.
pub fn sweep(lengths: &[usize], iterations: u32) -> Vec<CpuMeasurement> {
    lengths
        .iter()
        .map(|&n| measure_forward(n, iterations))
        .collect()
}

/// Times the 32-bit plan ([`crate::fast32`], now backed by the shared
/// Shoup-lazy datapath) — the strongest software baseline this crate
/// offers.
///
/// # Panics
///
/// Panics if no suitable 30-bit prime exists (never for `n <= 2^20`) or if
/// `iterations == 0`.
pub fn measure_forward_fast32(n: usize, iterations: u32) -> CpuMeasurement {
    assert!(iterations > 0, "need at least one iteration");
    let field = NttField::with_bits(n, 30).expect("30-bit NTT prime exists");
    let plan = crate::fast32::Fast32Plan::new(&field).expect("q < 2^31");
    let q = plan.modulus();
    let mut data: Vec<u32> = (0..n as u32) // analyzer: allow(raw_residue_op) — index widening for input generation only.
        .map(|i| i.wrapping_mul(2654435761) % q) // analyzer: allow(raw_residue_op) — deterministic input generator, not datapath math.
        .collect();
    plan.forward(&mut data);
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iterations {
        let t0 = Instant::now();
        plan.forward(&mut data);
        let dt = t0.elapsed();
        best = best.min(dt);
        total += dt;
    }
    CpuMeasurement {
        n,
        best,
        mean: total / iterations,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_positive_and_monotonic_in_n() {
        let small = measure_forward(256, 5);
        let large = measure_forward(4096, 5);
        assert!(small.best > Duration::ZERO);
        // 16x the size and 1.5x the stages: must be slower.
        assert!(large.best > small.best);
        assert_eq!(small.iterations, 5);
        assert!(small.mean >= small.best);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        measure_forward(16, 0);
    }
}
