//! Shared, thread-safe NTT plan cache.
//!
//! Building an [`NttPlan`] costs O(N·log N) modular exponentiations
//! (twiddle tables, ψ-power tables, and their Shoup quotients). A single
//! long-lived engine amortizes that cost with a private memo, but a
//! *serving* deployment runs many short-lived engines across worker
//! threads — and without sharing, every worker rebuilds the identical
//! tables for the same `(n, q)`. [`PlanCache`] is the shared memo: one
//! `Arc<NttPlan>` per `(n, q)`, built exactly once per cache (racing
//! builders agree on the first insert), handed out by reference count.
//!
//! The root derivation is centralized here: every cached plan uses
//! `ψ = root_of_unity(2N, q)` and `ω = ψ²`, the same derivation as the
//! simulated PIM memory controller, so plans from this cache are
//! bit-compatible with every backend in the workspace.
//!
//! Hit/miss counters make cache effectiveness observable — the serving
//! layer surfaces them in its stats so a cold cache (or a workload with
//! unbounded `(n, q)` spread) is visible in production telemetry.

use crate::plan::NttPlan;
use modmath::prime::{self, NttField};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Point-in-time counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups served from an already-built plan.
    pub hits: u64,
    /// Lookups that had to build (and insert) a new plan.
    pub misses: u64,
    /// Distinct `(n, q)` plans currently cached.
    pub entries: usize,
}

impl PlanCacheStats {
    /// Fraction of lookups served from cache (1.0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe `(n, q) → Arc<NttPlan>` cache with hit/miss counters.
///
/// ```
/// use ntt_ref::cache::PlanCache;
///
/// # fn main() -> Result<(), modmath::Error> {
/// let cache = PlanCache::new();
/// let a = cache.get_or_build(256, 12289)?; // builds
/// let b = cache.get_or_build(256, 12289)?; // shared, no rebuild
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: RwLock<HashMap<(usize, u64), Arc<NttPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide shared cache. Engines constructed without an
    /// explicit cache share this one, so plans built anywhere in the
    /// process (CLI, service workers, tests) are reused everywhere.
    pub fn global() -> Arc<PlanCache> {
        static GLOBAL: OnceLock<Arc<PlanCache>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(PlanCache::new())).clone()
    }

    /// Returns the cached plan for `(n, q)`, building it on first use.
    ///
    /// Concurrent first lookups may build the plan more than once, but
    /// all callers receive the plan that won the insert race (plans for
    /// one `(n, q)` are identical by construction), and the build happens
    /// outside any lock so readers of other keys never wait on it.
    ///
    /// # Errors
    ///
    /// Propagates root-derivation failures: `n` not a power of two, `q`
    /// not prime, or no 2N-th root of unity (`2N ∤ q-1`).
    pub fn get_or_build(&self, n: usize, q: u64) -> Result<Arc<NttPlan>, modmath::Error> {
        if let Some(plan) = self.plans.read().expect("plan cache poisoned").get(&(n, q)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(plan.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Derive ψ the same way the PIM memory controller does, so every
        // consumer transforms with the identical root.
        let psi = prime::root_of_unity(2 * n as u64, q)?;
        let field = NttField::with_psi(n, q, psi)?;
        let built = Arc::new(NttPlan::new(field));
        let mut plans = self.plans.write().expect("plan cache poisoned");
        Ok(plans.entry((n, q)).or_insert(built).clone())
    }

    /// Current counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.plans.read().expect("plan cache poisoned").len(),
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.read().expect("plan cache poisoned").len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn builds_once_and_shares() {
        let cache = PlanCache::new();
        let a = cache.get_or_build(64, 12289).unwrap();
        let b = cache.get_or_build(64, 12289).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.get_or_build(64, 7681).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "distinct (n, q) get distinct plans");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
        assert!(stats.hit_rate() > 0.3 && stats.hit_rate() < 0.4);
    }

    #[test]
    fn rejects_impossible_fields() {
        let cache = PlanCache::new();
        assert!(
            cache.get_or_build(100, 12289).is_err(),
            "not a power of two"
        );
        assert!(cache.get_or_build(64, 65535).is_err(), "not prime");
        // q=7681 has 2^9 | q-1 but not 2^11: N=1024 needs a 2048th root.
        assert!(
            cache.get_or_build(1024, 7681).is_err(),
            "2N does not divide q-1"
        );
        assert!(cache.is_empty(), "failed builds cache nothing");
    }

    #[test]
    fn cached_plan_matches_direct_construction() {
        let cache = PlanCache::new();
        let plan = cache.get_or_build(256, 12289).unwrap();
        let psi = prime::root_of_unity(512, 12289).unwrap();
        let direct = NttPlan::new(NttField::with_psi(256, 12289, psi).unwrap());
        let mut a: Vec<u64> = (0..256).map(|i| i * 7 % 12289).collect();
        let mut b = a.clone();
        plan.forward(&mut a);
        direct.forward(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_first_lookups_agree() {
        let cache = Arc::new(PlanCache::new());
        let plans: Vec<Arc<NttPlan>> = thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let cache = cache.clone();
                    s.spawn(move || cache.get_or_build(512, 12289).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        // Whatever the build race did, exactly one plan survived and
        // every thread holds it.
        assert_eq!(cache.len(), 1);
        let winner = cache.get_or_build(512, 12289).unwrap();
        assert!(plans.iter().all(|p| Arc::ptr_eq(p, &winner)));
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 9);
        assert!(stats.misses >= 1);
    }
}
