//! Stockham self-sorting NTT.
//!
//! Stockham \[18\] avoids the bit-reversal permutation entirely by letting
//! each stage write to a permuted location in a second buffer. The paper's
//! §II.B observes that such self-sorting algorithms still imply `log N`
//! shuffling stages when mapped to a memory hierarchy, so recursive
//! Cooley–Tukey (which reuses rows) is preferred for PIM; this
//! implementation exists to make that comparison concrete and as an extra
//! cross-check of the golden model.

use crate::plan::NttPlan;
use modmath::arith::{add_mod, mul_mod, sub_mod};
use modmath::bound::{self, Lazy};
use modmath::shoup;

/// Forward cyclic NTT, natural order in and out, Stockham dataflow
/// (no explicit bit-reversal anywhere).
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn forward(plan: &NttPlan, data: &mut [u64]) {
    transform(plan, data, false);
}

/// Inverse cyclic NTT, natural order in and out, including `N⁻¹` scaling.
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn inverse(plan: &NttPlan, data: &mut [u64]) {
    transform(plan, data, true);
    let q = plan.modulus();
    let n_inv = plan.n_inv();
    if plan.uses_lazy() {
        let n_inv_shoup = plan.n_inv_shoup();
        for x in data.iter_mut() {
            *x = shoup::mul_mod(*x, n_inv, n_inv_shoup, q);
        }
    } else {
        for x in data.iter_mut() {
            *x = mul_mod(*x, n_inv, q);
        }
    }
}

fn transform(plan: &NttPlan, data: &mut [u64], inverse: bool) {
    let n = plan.n();
    assert_eq!(data.len(), n, "length mismatch");
    let q = plan.modulus();
    let lazy = plan.uses_lazy();
    let mut cur = data.to_vec();
    let mut next = vec![0u64; n];
    let mut l = n / 2; // butterfly distance in units of m
    let mut m = 1usize; // transform granule size
    while m < n {
        // Stage twiddle table: ω^(j·N/(2l)) for j in 0..l — the DIT table of
        // the stage whose group count is l.
        let s = l.trailing_zeros();
        let table = plan.dit_stage_twiddles(s, inverse);
        debug_assert_eq!(table.len(), l);
        if lazy {
            // GS-shaped butterfly on the lazy datapath: values stay in
            // [0, 2q) stage to stage (multiply happens after the subtract,
            // absorbing the [0, 4q) difference immediately) — Lazy<2> in,
            // Lazy<2> out, with the bound algebra checked at compile time.
            let table_shoup = plan.dit_stage_twiddles_shoup(s, inverse);
            for j in 0..l {
                let (w, ws) = (table[j], table_shoup[j]);
                for k in 0..m {
                    let a = Lazy::<2>::assume(cur[k + j * m], q);
                    let b = Lazy::<2>::assume(cur[k + j * m + l * m], q);
                    next[k + 2 * j * m] = bound::reduce_twice(bound::add_lazy(a, b, q), q).get();
                    next[k + 2 * j * m + m] =
                        bound::mul_lazy(bound::sub_lazy(a, b, q), w, ws, q).get();
                }
            }
        } else {
            for j in 0..l {
                let w = table[j];
                for k in 0..m {
                    let a = cur[k + j * m];
                    let b = cur[k + j * m + l * m];
                    next[k + 2 * j * m] = add_mod(a, b, q);
                    next[k + 2 * j * m + m] = mul_mod(sub_mod(a, b, q), w, q);
                }
            }
        }
        std::mem::swap(&mut cur, &mut next);
        l /= 2;
        m *= 2;
    }
    if lazy {
        // Single normalization pass: [0, 2q) → [0, q).
        for x in cur.iter_mut() {
            *x = shoup::reduce_once(*x, q);
        }
    }
    data.copy_from_slice(&cur);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use modmath::prime::NttField;

    fn plan(n: usize) -> NttPlan {
        NttPlan::new(NttField::with_bits(n, 24).expect("field exists"))
    }

    #[test]
    fn matches_naive() {
        for n in [2usize, 4, 8, 64, 512] {
            let p = plan(n);
            let q = p.modulus();
            let x: Vec<u64> = (0..n as u64).map(|i| (i * 13 + 1) % q).collect();
            let expect = naive::ntt(p.field(), &x);
            let mut got = x.clone();
            forward(&p, &mut got);
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn roundtrip() {
        let p = plan(256);
        let q = p.modulus();
        let x: Vec<u64> = (0..256u64).map(|i| (i * 29 + 4) % q).collect();
        let mut v = x.clone();
        forward(&p, &mut v);
        inverse(&p, &mut v);
        assert_eq!(v, x);
    }

    #[test]
    fn all_dataflows_agree() {
        let p = plan(128);
        let q = p.modulus();
        let x: Vec<u64> = (0..128u64).map(|i| (i * 5 + 23) % q).collect();
        let mut a = x.clone();
        p.forward(&mut a);
        let mut b = x.clone();
        forward(&p, &mut b);
        let mut c = x;
        crate::pease::forward(&p, &mut c);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
