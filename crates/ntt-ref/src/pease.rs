//! Pease constant-geometry NTT.
//!
//! Every stage applies butterflies to the same index pattern — pairs
//! `(i, i + N/2)` written to `(2i, 2i + 1)` — which is why the paper's §II.B
//! notes Pease \[17\] "is well suited for FPGAs and ASICs due to its regular
//! structure" but needs `log N` shuffles when mapped onto a memory
//! hierarchy (the implicit perfect shuffle between stages), making it a
//! poor fit for PIM row buffers compared to recursive Cooley–Tukey.

use crate::plan::NttPlan;
use modmath::arith::{add_mod, mul_mod, sub_mod};

/// Forward cyclic NTT, natural order in and out, Pease dataflow.
///
/// Internally double-buffered (the constant geometry cannot run in place);
/// the final bit-reversal is folded into a copy back into `data`.
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn forward(plan: &NttPlan, data: &mut [u64]) {
    transform(plan, data, false);
}

/// Inverse cyclic NTT, natural order in and out, including `N⁻¹` scaling.
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn inverse(plan: &NttPlan, data: &mut [u64]) {
    transform(plan, data, true);
    let q = plan.modulus();
    let n_inv = plan.n_inv();
    for x in data.iter_mut() {
        *x = mul_mod(*x, n_inv, q);
    }
}

fn transform(plan: &NttPlan, data: &mut [u64], inverse: bool) {
    let n = plan.n();
    assert_eq!(data.len(), n, "length mismatch");
    let q = plan.modulus();
    let log_n = plan.log_n();
    let mut cur = data.to_vec();
    let mut next = vec![0u64; n];
    let half = n / 2;
    for s in 0..log_n {
        // DIF stage s (spans shrinking) in constant geometry: after s
        // perfect shuffles, the butterfly at physical pair (i, i + N/2)
        // needs twiddle ω^((i >> s) · 2^s) — the DIT-table entry of stage
        // (L-1-s) at index (i >> s).
        let table = plan.dit_stage_twiddles(log_n - 1 - s, inverse);
        for i in 0..half {
            let a = cur[i];
            let b = cur[i + half];
            let w = table[i >> s];
            next[2 * i] = add_mod(a, b, q);
            next[2 * i + 1] = mul_mod(sub_mod(a, b, q), w, q);
        }
        std::mem::swap(&mut cur, &mut next);
    }
    // Constant-geometry DIF leaves the result bit-reversed.
    modmath::bitrev::bitrev_permute(&mut cur);
    data.copy_from_slice(&cur);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use modmath::prime::NttField;

    fn plan(n: usize) -> NttPlan {
        NttPlan::new(NttField::with_bits(n, 24).expect("field exists"))
    }

    #[test]
    fn matches_naive() {
        for n in [2usize, 4, 8, 32, 256] {
            let p = plan(n);
            let q = p.modulus();
            let x: Vec<u64> = (0..n as u64).map(|i| (i * 11 + 2) % q).collect();
            let expect = naive::ntt(p.field(), &x);
            let mut got = x.clone();
            forward(&p, &mut got);
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn roundtrip() {
        let p = plan(64);
        let q = p.modulus();
        let x: Vec<u64> = (0..64u64).map(|i| (i * 3 + 9) % q).collect();
        let mut v = x.clone();
        forward(&p, &mut v);
        inverse(&p, &mut v);
        assert_eq!(v, x);
    }

    #[test]
    fn agrees_with_iterative() {
        let p = plan(128);
        let q = p.modulus();
        let x: Vec<u64> = (0..128u64).map(|i| (i * i + 17) % q).collect();
        let mut a = x.clone();
        p.forward(&mut a);
        let mut b = x;
        forward(&p, &mut b);
        assert_eq!(a, b);
    }
}
