//! AVX2 backend for the lane-batched butterfly stage (`--features simd`,
//! `x86_64` only). Selected at runtime: the dispatcher in [`super`] calls
//! [`stage_pass`] / [`stage_pair_pass`] only when [`available`] reports
//! AVX2, and the portable SoA-scalar passes remain the fallback on every
//! other host.
//!
//! AVX2 has no 64×64→128 vector multiply, so the generic Shoup
//! `mulhi`/`mullo` are assembled from 32×32→64 `vpmuludq` partial
//! products (4 for the high half, 3 for the low half — 10 per four-lane
//! lazy multiply). The value semantics are exactly those of the portable
//! butterfly: identical per-lane operation sequence, wrapping arithmetic,
//! bit-identical outputs. Narrow moduli (`q < 2³¹`, the `NARROW` variants)
//! reduce the odd leg under 2³² first, after which the whole lazy multiply
//! is three exact `vpmuludq`s — the big win of this backend; per lane that
//! is exactly the portable [`modmath::shoup::mul_lazy_narrow`] sequence.
//! Unsigned 64-bit compares (the conditional subtracts) use the sign-flip
//! + signed-compare trick with the constant pre-flipped per stage.

use core::arch::x86_64::{
    __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_cmpgt_epi64, _mm256_loadu_si256,
    _mm256_mul_epu32, _mm256_set1_epi64x, _mm256_slli_epi64, _mm256_srli_epi64,
    _mm256_storeu_si256, _mm256_sub_epi64, _mm256_xor_si256,
};

use super::LANE_WIDTH;

/// Whether the running CPU supports the AVX2 stage pass.
pub(super) fn available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// One butterfly stage over a row range, AVX2 path; drop-in for
/// `portable_stage_pass` (same contract, bit-identical results).
///
/// # Panics
///
/// Panics if the running CPU lacks AVX2 (the dispatcher checks
/// [`available`] first, so this is a programming-error backstop that
/// keeps the wrapper sound).
pub(super) fn stage_pass(soa: &mut [u64], pairs: &[u64], q: u64) {
    assert!(available(), "AVX2 stage pass dispatched without AVX2");
    // SAFETY: the `avx2` target feature is present (checked above), and
    // `stage_pass_avx2` has no other safety requirements.
    unsafe { stage_pass_avx2::<false>(soa, pairs, q) }
}

/// [`stage_pass`] on the narrow (32-bit Shoup) datapath; requires
/// `q < 2³¹`.
///
/// # Panics
///
/// Panics if the running CPU lacks AVX2.
pub(super) fn stage_pass_narrow(soa: &mut [u64], pairs: &[u64], q: u64) {
    assert!(available(), "AVX2 stage pass dispatched without AVX2");
    // SAFETY: as for `stage_pass`.
    unsafe { stage_pass_avx2::<true>(soa, pairs, q) }
}

/// Two consecutive stages fused into one sweep, AVX2 path; drop-in for
/// `portable_stage_pair_pass` (same contract, bit-identical results).
///
/// # Panics
///
/// Panics if the running CPU lacks AVX2 (the dispatcher checks
/// [`available`] first, so this is a programming-error backstop that
/// keeps the wrapper sound).
pub(super) fn stage_pair_pass(soa: &mut [u64], lo: &[u64], hi: &[u64], q: u64) {
    assert!(available(), "AVX2 stage-pair pass dispatched without AVX2");
    // SAFETY: the `avx2` target feature is present (checked above), and
    // `stage_pair_avx2` has no other safety requirements.
    unsafe { stage_pair_avx2::<false>(soa, lo, hi, q) }
}

/// [`stage_pair_pass`] on the narrow (32-bit Shoup) datapath; requires
/// `q < 2³¹`.
///
/// # Panics
///
/// Panics if the running CPU lacks AVX2.
pub(super) fn stage_pair_pass_narrow(soa: &mut [u64], lo: &[u64], hi: &[u64], q: u64) {
    assert!(available(), "AVX2 stage-pair pass dispatched without AVX2");
    // SAFETY: as for `stage_pair_pass`.
    unsafe { stage_pair_avx2::<true>(soa, lo, hi, q) }
}

const SIGN: i64 = i64::MIN; // 1 << 63, the unsigned→signed compare flip

/// Per-stage vector constants shared by every butterfly of a pass.
#[derive(Clone, Copy)]
struct Consts {
    q_v: __m256i,
    two_q: __m256i,
    /// `x ≥ 2q` (unsigned) becomes `(x ^ SIGN) > ((2q−1) ^ SIGN)` (signed).
    two_q_m1_flip: __m256i,
    sign: __m256i,
}

// SAFETY: callers must have verified AVX2 support (every public-facing
// wrapper asserts `available()` first); the function only builds splat
// registers and touches no memory.
#[target_feature(enable = "avx2")]
unsafe fn consts(q: u64) -> Consts {
    Consts {
        q_v: _mm256_set1_epi64x(q as i64),
        two_q: _mm256_set1_epi64x((2 * q) as i64),
        two_q_m1_flip: _mm256_set1_epi64x((2 * q - 1) as i64 ^ SIGN),
        sign: _mm256_set1_epi64x(SIGN),
    }
}

/// `reduce_twice` on four lanes: subtract `2q` where `x ≥ 2q`.
// SAFETY: callers must have verified AVX2 support; register-only
// arithmetic, no memory access.
#[target_feature(enable = "avx2")]
unsafe fn reduce_twice_vec(x: __m256i, c: Consts) -> __m256i {
    let ge = _mm256_cmpgt_epi64(_mm256_xor_si256(x, c.sign), c.two_q_m1_flip);
    _mm256_sub_epi64(x, _mm256_and_si256(ge, c.two_q))
}

/// One Harvey lazy butterfly on four lanes, value semantics exactly those
/// of the portable leg sequence (`reduce_twice`, then `mul_lazy` /
/// `mul_lazy_narrow`, then `add`/`sub`). The `NARROW` path expects `ws`
/// splatted from the *top half* of the Shoup constant (`w' >> 32`).
// SAFETY: callers must have verified AVX2 support; register-only
// arithmetic, no memory access.
#[target_feature(enable = "avx2")]
unsafe fn butterfly_vec<const NARROW: bool>(
    a: __m256i,
    b: __m256i,
    w: __m256i,
    ws: __m256i,
    c: Consts,
) -> (__m256i, __m256i) {
    // u = reduce_twice(even).
    let u = reduce_twice_vec(a, c);
    let t = if NARROW {
        // Reduce the odd leg under 2³², then every product is exact in
        // one 32×32→64 `vpmuludq`: t = o·w − ⌊o·(w'≫32)/2³²⌋·q.
        let o = reduce_twice_vec(b, c);
        let hi = _mm256_srli_epi64(_mm256_mul_epu32(o, ws), 32);
        _mm256_sub_epi64(_mm256_mul_epu32(o, w), _mm256_mul_epu32(hi, c.q_v))
    } else {
        // t = mul_lazy(odd, w, w', q) = odd·w − ⌊odd·w'/2⁶⁴⌋·q, all
        // multiplies wrapping to 64 bits.
        let hi = mulhi_epu64(b, ws);
        _mm256_sub_epi64(mullo_epu64(b, w), mullo_epu64(hi, c.q_v))
    };
    // even' = u + t, odd' = u + 2q − t: both < 4q.
    (
        _mm256_add_epi64(u, t),
        _mm256_sub_epi64(_mm256_add_epi64(u, c.two_q), t),
    )
}

/// The `w'` lane value a pass should splat: the full 64-bit Shoup
/// constant on the generic path, its top half on the narrow path.
#[inline(always)]
fn ws_lane<const NARROW: bool>(ws: u64) -> i64 {
    (if NARROW { ws >> 32 } else { ws }) as i64
}

// SAFETY: callers must have verified AVX2 support. Every load/store
// pointer is derived from an in-bounds subslice of `soa` immediately
// before use: the chunking yields `LANE_WIDTH`-element (= 8 × u64) rows,
// so `row[4·half..]` always holds the four u64 lanes one `__m256i`
// unaligned access touches.
#[target_feature(enable = "avx2")]
unsafe fn stage_pass_avx2<const NARROW: bool>(soa: &mut [u64], pairs: &[u64], q: u64) {
    let band = (pairs.len() / 2) * LANE_WIDTH;
    let c = consts(q);
    for group in soa.chunks_exact_mut(2 * band) {
        let (even, odd) = group.split_at_mut(band);
        for (pair, (e, o)) in pairs.chunks_exact(2).zip(
            even.chunks_exact_mut(LANE_WIDTH)
                .zip(odd.chunks_exact_mut(LANE_WIDTH)),
        ) {
            let w = _mm256_set1_epi64x(pair[0] as i64);
            let ws = _mm256_set1_epi64x(ws_lane::<NARROW>(pair[1]));
            for half in 0..2 {
                let ep = e[4 * half..].as_mut_ptr() as *mut __m256i;
                let op = o[4 * half..].as_mut_ptr() as *mut __m256i;
                let (x0, x1) = butterfly_vec::<NARROW>(
                    _mm256_loadu_si256(ep),
                    _mm256_loadu_si256(op),
                    w,
                    ws,
                    c,
                );
                _mm256_storeu_si256(ep, x0);
                _mm256_storeu_si256(op, x1);
            }
        }
    }
}

/// Same supergroup walk as `portable_stage_pair_pass`: four quarters
/// `Q0..Q3` of `m` rows each, stage `s` on `(Q0, Q1)` and `(Q2, Q3)` with
/// `lo[j]`, stage `s+1` on `(Q0, Q2)` with `hi[j]` and `(Q1, Q3)` with
/// `hi[j+m]`, all four values chained in registers.
// SAFETY: callers must have verified AVX2 support. Every load/store
// pointer is derived from an in-bounds subslice of one of the four
// band-sized quarters immediately before use: `off + 4 ≤ band` holds for
// every `(j, half)` the loops produce, so each `__m256i` unaligned access
// stays inside its quarter.
#[target_feature(enable = "avx2")]
unsafe fn stage_pair_avx2<const NARROW: bool>(soa: &mut [u64], lo: &[u64], hi: &[u64], q: u64) {
    let m = lo.len() / 2;
    debug_assert_eq!(hi.len(), 2 * lo.len(), "upper stage has 2m twiddles");
    let band = m * LANE_WIDTH;
    let c = consts(q);
    for group in soa.chunks_exact_mut(4 * band) {
        let (q01, q23) = group.split_at_mut(2 * band);
        let (r0, r1) = q01.split_at_mut(band);
        let (r2, r3) = q23.split_at_mut(band);
        for j in 0..m {
            let wl = _mm256_set1_epi64x(lo[2 * j] as i64);
            let wls = _mm256_set1_epi64x(ws_lane::<NARROW>(lo[2 * j + 1]));
            let wa = _mm256_set1_epi64x(hi[2 * j] as i64);
            let was = _mm256_set1_epi64x(ws_lane::<NARROW>(hi[2 * j + 1]));
            let wb = _mm256_set1_epi64x(hi[2 * (j + m)] as i64);
            let wbs = _mm256_set1_epi64x(ws_lane::<NARROW>(hi[2 * (j + m) + 1]));
            for half in 0..2 {
                let off = j * LANE_WIDTH + 4 * half;
                let p0 = r0[off..].as_mut_ptr() as *mut __m256i;
                let p1 = r1[off..].as_mut_ptr() as *mut __m256i;
                let p2 = r2[off..].as_mut_ptr() as *mut __m256i;
                let p3 = r3[off..].as_mut_ptr() as *mut __m256i;
                let (x0, x1) = butterfly_vec::<NARROW>(
                    _mm256_loadu_si256(p0),
                    _mm256_loadu_si256(p1),
                    wl,
                    wls,
                    c,
                );
                let (x2, x3) = butterfly_vec::<NARROW>(
                    _mm256_loadu_si256(p2),
                    _mm256_loadu_si256(p3),
                    wl,
                    wls,
                    c,
                );
                let (y0, y2) = butterfly_vec::<NARROW>(x0, x2, wa, was, c);
                let (y1, y3) = butterfly_vec::<NARROW>(x1, x3, wb, wbs, c);
                _mm256_storeu_si256(p0, y0);
                _mm256_storeu_si256(p1, y1);
                _mm256_storeu_si256(p2, y2);
                _mm256_storeu_si256(p3, y3);
            }
        }
    }
}

/// High 64 bits of the unsigned 64×64 product, per lane, from four
/// `vpmuludq` 32×32 partials with the standard carry gather.
// SAFETY: callers must have verified AVX2 support; register-only
// arithmetic, no memory access.
#[target_feature(enable = "avx2")]
unsafe fn mulhi_epu64(a: __m256i, b: __m256i) -> __m256i {
    let m32 = _mm256_set1_epi64x(0xffff_ffff);
    let a_hi = _mm256_srli_epi64(a, 32);
    let b_hi = _mm256_srli_epi64(b, 32);
    let ll = _mm256_mul_epu32(a, b);
    let lh = _mm256_mul_epu32(a, b_hi);
    let hl = _mm256_mul_epu32(a_hi, b);
    let hh = _mm256_mul_epu32(a_hi, b_hi);
    let t = _mm256_add_epi64(hl, _mm256_srli_epi64(ll, 32));
    let u = _mm256_add_epi64(lh, _mm256_and_si256(t, m32));
    _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(t, 32)),
        _mm256_srli_epi64(u, 32),
    )
}

/// Low 64 bits of the (wrapping) 64×64 product, per lane: the `ll`
/// partial plus both cross terms shifted up.
// SAFETY: callers must have verified AVX2 support; register-only
// arithmetic, no memory access.
#[target_feature(enable = "avx2")]
unsafe fn mullo_epu64(a: __m256i, b: __m256i) -> __m256i {
    let ll = _mm256_mul_epu32(a, b);
    let cross = _mm256_add_epi64(
        _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
        _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
    );
    _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32))
}

#[cfg(test)]
mod tests {
    use super::super::{portable_stage_pair_pass, portable_stage_pass};
    use super::*;
    use modmath::shoup;

    fn lcg(seed: u64) -> impl FnMut(u64) -> u64 {
        let mut state = seed | 1;
        move |bound: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 1) % bound
        }
    }

    fn twiddles(rnd: &mut impl FnMut(u64) -> u64, count: usize, q: u64) -> Vec<u64> {
        (0..count)
            .flat_map(|_| {
                let w = rnd(q);
                [w, shoup::precompute(w, q)]
            })
            .collect()
    }

    #[test]
    fn avx2_stage_pass_is_bit_identical_to_portable() {
        if !available() {
            eprintln!("skipping: host lacks AVX2");
            return;
        }
        for q in [12289u64, 8380417, (1 << 62) - 57] {
            let mut rnd = lcg(q);
            // Stage with m = 4 over 16 rows (2 groups of 2m = 8 rows).
            let pairs = twiddles(&mut rnd, 4, q);
            let mut soa: Vec<u64> = (0..16 * LANE_WIDTH).map(|_| rnd(4 * q)).collect();
            let mut expect = soa.clone();
            portable_stage_pass::<false>(&mut expect, &pairs, q);
            stage_pass(&mut soa, &pairs, q);
            assert_eq!(soa, expect, "q={q}");
        }
    }

    #[test]
    fn avx2_narrow_stage_pass_is_bit_identical_to_portable() {
        if !available() {
            eprintln!("skipping: host lacks AVX2");
            return;
        }
        for q in [12289u64, 8380417, 2_013_265_921, (1 << 31) - 1] {
            let mut rnd = lcg(q.rotate_left(3));
            let pairs = twiddles(&mut rnd, 4, q);
            let mut soa: Vec<u64> = (0..16 * LANE_WIDTH).map(|_| rnd(4 * q)).collect();
            let mut expect = soa.clone();
            portable_stage_pass::<true>(&mut expect, &pairs, q);
            stage_pass_narrow(&mut soa, &pairs, q);
            assert_eq!(soa, expect, "q={q}");
        }
    }

    #[test]
    fn avx2_stage_pair_pass_is_bit_identical_to_portable() {
        if !available() {
            eprintln!("skipping: host lacks AVX2");
            return;
        }
        for q in [12289u64, 8380417, (1 << 62) - 57] {
            let mut rnd = lcg(q.rotate_left(7));
            // Fused stages with m = 4 over 32 rows (2 supergroups of 4m
            // = 16 rows each).
            let lo = twiddles(&mut rnd, 4, q);
            let hi = twiddles(&mut rnd, 8, q);
            let mut soa: Vec<u64> = (0..32 * LANE_WIDTH).map(|_| rnd(4 * q)).collect();
            let mut expect = soa.clone();
            portable_stage_pair_pass::<false>(&mut expect, &lo, &hi, q);
            stage_pair_pass(&mut soa, &lo, &hi, q);
            assert_eq!(soa, expect, "q={q}");
        }
    }

    #[test]
    fn avx2_narrow_stage_pair_pass_is_bit_identical_to_portable() {
        if !available() {
            eprintln!("skipping: host lacks AVX2");
            return;
        }
        for q in [12289u64, 8380417, 2_013_265_921, (1 << 31) - 1] {
            let mut rnd = lcg(q.rotate_left(11));
            let lo = twiddles(&mut rnd, 4, q);
            let hi = twiddles(&mut rnd, 8, q);
            let mut soa: Vec<u64> = (0..32 * LANE_WIDTH).map(|_| rnd(4 * q)).collect();
            let mut expect = soa.clone();
            portable_stage_pair_pass::<true>(&mut expect, &lo, &hi, q);
            stage_pair_pass_narrow(&mut soa, &lo, &hi, q);
            assert_eq!(soa, expect, "q={q}");
        }
    }
}
