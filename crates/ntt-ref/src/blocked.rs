//! The row-centric blocked decomposition of the DIT transform — the
//! software mirror of the paper's mapping (§III–IV).
//!
//! Over bit-reversed input, the first `log B` DIT stages of a size-`N`
//! transform touch only *contiguous* blocks of `B` elements (all data
//! dependence is within a block), so they can be computed as `N/B`
//! independent block-local passes — the paper's "vertical partitioning"
//! (its Fig. 4). The remaining `log N − log B` stages cross blocks but are
//! vectorized: every butterfly group spans at least `B` consecutive lanes.
//!
//! [`forward_blocked`] executes exactly that schedule with an explicit
//! block-local working buffer of `B` words standing in for the row buffer,
//! and returns transfer statistics that validate the paper's §III.A
//! data-movement analysis: total traffic `O(N + N·(log N − log B))`.

use crate::plan::NttPlan;
use modmath::arith::{add_mod, mul_mod, sub_mod};

/// Transfer statistics from one blocked transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockedStats {
    /// Words loaded from the backing array into the block buffer.
    pub words_loaded: usize,
    /// Words stored back from the block buffer.
    pub words_stored: usize,
    /// Number of block-local passes (the paper's `N/B` independent blocks).
    pub block_passes: usize,
    /// Number of cross-block stages executed element-by-element.
    pub cross_stages: usize,
}

/// Forward cyclic NTT (natural in/out) computed with the row-centric
/// blocked schedule using a working set of `block` words.
///
/// Numerically identical to [`NttPlan::forward`]; additionally returns the
/// traffic statistics of the decomposition.
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`, if `block` is not a power of two,
/// or if `block < 2`.
pub fn forward_blocked(plan: &NttPlan, data: &mut [u64], block: usize) -> BlockedStats {
    let n = plan.n();
    assert_eq!(data.len(), n, "length mismatch");
    assert!(
        block.is_power_of_two() && block >= 2,
        "block size must be a power of two >= 2"
    );
    let block = block.min(n);
    let q = plan.modulus();
    let mut stats = BlockedStats::default();

    modmath::bitrev::bitrev_permute(data);

    // Phase 1: block-local stages through an explicit local buffer
    // (the row-buffer stand-in).
    let log_block = block.trailing_zeros();
    let mut local = vec![0u64; block];
    for blk in 0..n / block {
        let base = blk * block;
        local.copy_from_slice(&data[base..base + block]);
        stats.words_loaded += block;
        for s in 0..log_block {
            let m = 1usize << s;
            let tws = plan.dit_stage_twiddles(s, false);
            for k in (0..block).step_by(2 * m) {
                for j in 0..m {
                    let t = mul_mod(local[k + j + m], tws[j], q);
                    let u = local[k + j];
                    local[k + j] = add_mod(u, t, q);
                    local[k + j + m] = sub_mod(u, t, q);
                }
            }
        }
        data[base..base + block].copy_from_slice(&local);
        stats.words_stored += block;
        stats.block_passes += 1;
    }

    // Phase 2: cross-block stages, processed stage by stage; every element
    // is re-loaded and re-stored once per stage (the paper's O(N) per-stage
    // traffic when the input exceeds local memory).
    for s in log_block..plan.log_n() {
        let m = 1usize << s;
        let tws = plan.dit_stage_twiddles(s, false);
        for k in (0..n).step_by(2 * m) {
            for j in 0..m {
                let t = mul_mod(data[k + j + m], tws[j], q);
                let u = data[k + j];
                data[k + j] = add_mod(u, t, q);
                data[k + j + m] = sub_mod(u, t, q);
            }
        }
        stats.words_loaded += n;
        stats.words_stored += n;
        stats.cross_stages += 1;
    }
    stats
}

/// The paper's §III.A data-transfer bound: `N + N·(log N − log B)` words
/// each way when `N > B`, or `N` when the input fits in the buffer.
pub fn predicted_words_each_way(n: usize, block: usize) -> usize {
    let block = block.min(n);
    let cross = n.trailing_zeros() - block.trailing_zeros();
    n + n * cross as usize
}

/// Compute-to-data-transfer ratio of the blocked schedule, in butterflies
/// per word moved (one way) — the paper's CDR metric.
pub fn compute_to_transfer_ratio(n: usize, block: usize) -> f64 {
    let ops = (n / 2) * n.trailing_zeros() as usize;
    ops as f64 / predicted_words_each_way(n, block) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::prime::NttField;

    fn plan(n: usize) -> NttPlan {
        NttPlan::new(NttField::with_bits(n, 24).expect("field exists"))
    }

    #[test]
    fn matches_plain_forward_for_all_block_sizes() {
        let p = plan(256);
        let q = p.modulus();
        let x: Vec<u64> = (0..256u64).map(|i| (i * 41 + 11) % q).collect();
        let mut expect = x.clone();
        p.forward(&mut expect);
        for block in [2usize, 8, 16, 64, 256] {
            let mut got = x.clone();
            forward_blocked(&p, &mut got, block);
            assert_eq!(got, expect, "block={block}");
        }
    }

    #[test]
    fn oversized_block_clamps_to_n() {
        let p = plan(16);
        let q = p.modulus();
        let x: Vec<u64> = (0..16u64).map(|i| (i + 1) % q).collect();
        let mut expect = x.clone();
        p.forward(&mut expect);
        let mut got = x;
        let stats = forward_blocked(&p, &mut got, 1024);
        assert_eq!(got, expect);
        assert_eq!(stats.cross_stages, 0);
        assert_eq!(stats.block_passes, 1);
    }

    #[test]
    fn traffic_matches_paper_bound() {
        for (n, block) in [(1024usize, 256usize), (4096, 256), (64, 8)] {
            let p = plan(n);
            let mut x: Vec<u64> = (0..n as u64).collect();
            let stats = forward_blocked(&p, &mut x, block);
            assert_eq!(stats.words_loaded, predicted_words_each_way(n, block));
            assert_eq!(stats.words_stored, predicted_words_each_way(n, block));
            assert_eq!(stats.block_passes, n / block);
            assert_eq!(
                stats.cross_stages as u32,
                n.trailing_zeros() - block.trailing_zeros()
            );
        }
    }

    #[test]
    fn cdr_is_bounded_by_log_n() {
        // CDR = O(log N / (1 + log(N/M))) <= O(log N), equality at M = N.
        let full = compute_to_transfer_ratio(4096, 4096);
        assert!((full - 6.0).abs() < 1e-9); // (N/2 * 12) / N = 6
        let partial = compute_to_transfer_ratio(4096, 256);
        assert!(partial < full);
        assert!(partial > 1.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_block() {
        let p = plan(16);
        let mut x = vec![0u64; 16];
        forward_blocked(&p, &mut x, 3);
    }
}
