//! Radix-4 NTT — the standard throughput optimization on CPUs and ASICs.
//!
//! A radix-4 butterfly consumes four inputs per step and halves the stage
//! count, trading multiplies for adds. Included to demonstrate that the
//! PIM mapping's radix-2 choice is *architectural*, not accidental: a
//! radix-4 vector op would need four atom buffers live per butterfly,
//! doubling the buffer file for a compute-bound win the memory-bound bank
//! cannot cash (the paper's CDR analysis, §III.A). The software version
//! here quantifies the ceiling.
//!
//! Works on power-of-four lengths directly; for `N = 2·4^k` a final
//! radix-2 stage completes the transform.

use crate::plan::NttPlan;
use modmath::arith::{add_mod, mul_mod, pow_mod, sub_mod};
use modmath::bitrev::bitrev_permute;

/// Forward cyclic NTT, natural order in and out, mixed radix-4/2 DIT.
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn forward(plan: &NttPlan, data: &mut [u64]) {
    let n = plan.n();
    assert_eq!(data.len(), n, "length mismatch");
    let q = plan.modulus();
    // The radix-4 DIT graph consumes the *digit-reversed* input; compose
    // from the radix-2 bit reversal for simplicity (cost excluded from
    // any timing claims — this is a reference implementation).
    bitrev_permute(data);

    // i = sqrt(-1) mod q: ω_4 = ω^(N/4).
    let im = pow_mod(plan.field().root_of_unity(), (n / 4) as u64, q);
    let mut s = 0u32; // radix-2 stage index (span 2^s)
                      // Leading radix-2 stage when log2(n) is odd.
    if plan.log_n() % 2 == 1 {
        radix2_stage(plan, data, s);
        s += 1;
    }
    while s < plan.log_n() {
        // One radix-4 stage = radix-2 stages s and s+1 fused.
        let m = 1usize << s; // quarter-span
        let tws = plan.dit_stage_twiddles(s + 1, false); // table of 2^(s+1)
        for k in (0..n).step_by(4 * m) {
            for j in 0..m {
                // Twiddles for the three non-trivial legs: ω^j2, ω^j1, ω^j3
                // where the fused indices come from the two radix-2 stages.
                let w1 = tws[j]; // stage s+1 twiddle at j
                let w2 = mul_mod(w1, w1, q); // = stage s twiddle at j
                let w3 = mul_mod(w2, w1, q);
                let a = data[k + j];
                let b = mul_mod(data[k + j + m], w2, q);
                let c = mul_mod(data[k + j + 2 * m], w1, q);
                let d = mul_mod(data[k + j + 3 * m], w3, q);
                // Radix-4 DIT butterfly.
                let t0 = add_mod(a, b, q);
                let t1 = sub_mod(a, b, q);
                let t2 = add_mod(c, d, q);
                let t3 = mul_mod(sub_mod(c, d, q), im, q);
                data[k + j] = add_mod(t0, t2, q);
                data[k + j + m] = add_mod(t1, t3, q);
                data[k + j + 2 * m] = sub_mod(t0, t2, q);
                data[k + j + 3 * m] = sub_mod(t1, t3, q);
            }
        }
        s += 2;
    }
}

fn radix2_stage(plan: &NttPlan, data: &mut [u64], s: u32) {
    let n = plan.n();
    let q = plan.modulus();
    let m = 1usize << s;
    let tws = plan.dit_stage_twiddles(s, false);
    for k in (0..n).step_by(2 * m) {
        for j in 0..m {
            let t = mul_mod(data[k + j + m], tws[j], q);
            let u = data[k + j];
            data[k + j] = add_mod(u, t, q);
            data[k + j + m] = sub_mod(u, t, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use modmath::prime::NttField;

    fn plan(n: usize) -> NttPlan {
        NttPlan::new(NttField::with_bits(n, 26).expect("field exists"))
    }

    #[test]
    fn matches_naive_power_of_four_lengths() {
        for n in [4usize, 16, 64, 256, 1024] {
            let p = plan(n);
            let q = p.modulus();
            let x: Vec<u64> = (0..n as u64).map(|i| (i * 19 + 7) % q).collect();
            let expect = naive::ntt(p.field(), &x);
            let mut got = x;
            forward(&p, &mut got);
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn matches_naive_odd_log_lengths() {
        for n in [8usize, 32, 128, 512, 2048] {
            let p = plan(n);
            let q = p.modulus();
            let x: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 11) % q).collect();
            let expect = naive::ntt(p.field(), &x);
            let mut got = x;
            forward(&p, &mut got);
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn agrees_with_radix2_plan() {
        let p = plan(4096);
        let q = p.modulus();
        let x: Vec<u64> = (0..4096u64).map(|i| (i * i + 5) % q).collect();
        let mut a = x.clone();
        p.forward(&mut a);
        let mut b = x;
        forward(&p, &mut b);
        assert_eq!(a, b);
    }
}
