//! Reference (CPU) implementations of the number-theoretic transform.
//!
//! This crate plays two roles in the NTT-PIM reproduction:
//!
//! 1. **Golden models.** Every hardware-mapped transform in
//!    [`ntt-pim-core`] is checked against these software implementations,
//!    starting from the naive O(N²) DFT ([`naive`]) that anchors the whole
//!    chain of trust.
//! 2. **The "x86 CPU" baseline.** The paper's Figs. 7–8 and Table III
//!    compare PIM latency against a software NTT; [`baseline`] times the
//!    iterative transform on the host machine.
//!
//! Implemented dataflows (all radix-2, power-of-two lengths):
//!
//! * [`iterative`] — the classic in-place Cooley–Tukey DIT (bit-reversed
//!   input → natural output) and Gentleman–Sande DIF (natural → bit-reversed),
//!   forward and inverse. The DIT graph with its geometric per-group twiddle
//!   sequences is exactly what the PIM compute unit executes. Both graphs
//!   run on the Shoup/Harvey lazy-reduction datapath
//!   ([`modmath::shoup`]) whenever `q < 2⁶²`, with the 128-bit widening
//!   kernel as the fallback above that bound.
//! * [`blocked`] — the same DIT transform reorganized into the paper's
//!   row-centric decomposition (§III.A): independent block-local stages
//!   followed by cross-block stages. This is the software mirror of the
//!   intra-row / inter-row mapping split.
//! * [`pease`] — constant-geometry dataflow (paper §II.B's discussion of
//!   parallel FFT algorithms \[17\]).
//! * [`stockham`] — self-sorting dataflow \[18\].
//! * [`four_step`] — cache-friendly four-step decomposition (extension).
//! * [`lanes`] — the lane-batched structure-of-arrays datapath: `L`
//!   polynomials per butterfly in lockstep, each twiddle (and Shoup
//!   quotient) loaded once per `L` residues. The throughput kernel for
//!   batched service traffic, with an optional AVX2 backend behind the
//!   `simd` feature.
//! * [`fast32`] — a 32-bit façade over the shared Shoup-lazy datapath,
//!   the *tuned* software baseline used for honest measured-CPU
//!   comparisons.
//! * [`cache`] — the shared, thread-safe `(n, q) → NttPlan` cache, so
//!   concurrent workers build each twiddle/Shoup table set once.
//! * [`radix4`] — mixed radix-4/2 DIT, the classic compute-bound
//!   optimization the memory-bound PIM mapping deliberately skips.
//! * [`naive`] — O(N²) evaluation, the ground truth.
//! * [`poly`] — cyclic and negacyclic polynomial multiplication built on the
//!   transforms, exercising the convolution theorem end to end.
//!
//! # Example
//!
//! ```
//! use modmath::prime::NttField;
//! use ntt_ref::plan::NttPlan;
//!
//! # fn main() -> Result<(), modmath::Error> {
//! let field = NttField::with_bits(8, 13)?;
//! let plan = NttPlan::new(field);
//! let mut data = vec![1, 2, 3, 4, 5, 6, 7, 8];
//! let original = data.clone();
//! plan.forward(&mut data);
//! plan.inverse(&mut data);
//! assert_eq!(data, original);
//! # Ok(())
//! # }
//! ```
//!
//! [`ntt-pim-core`]: ../ntt_pim_core/index.html

// The crate is unsafe-free except for the optional AVX2 intrinsics of the
// lane-batched kernel, so the blanket `forbid` relaxes to `deny` (with one
// scoped `allow` on `lanes::simd`) only when the `simd` feature is on.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod baseline;
pub mod blocked;
pub mod cache;
pub mod fast32;
pub mod four_step;
pub mod iterative;
pub mod lanes;
pub mod naive;
pub mod pease;
pub mod plan;
pub mod poly;
pub mod radix4;
pub mod stockham;
