//! Optimized 32-bit CPU NTT with a Montgomery datapath — the *strong*
//! software baseline.
//!
//! The plain [`crate::plan::NttPlan`] multiplies through 128-bit widening,
//! which is convenient but leaves CPU performance on the table. This plan
//! mirrors what a tuned software NTT (and the PIM CU itself) does: keep
//! twiddles in Montgomery form so every butterfly multiply is a single
//! 32×32→64 multiply plus one REDC. Used by the experiment harness to make
//! the "x86 (measured)" comparison as honest as possible.

use modmath::bitrev::bitrev_permute;
use modmath::montgomery::Montgomery32;
use modmath::prime::NttField;

/// A prepared length-`N` forward/inverse NTT over a `< 2³¹` prime with a
/// Montgomery-form twiddle table.
///
/// # Example
///
/// ```
/// use modmath::prime::NttField;
/// use ntt_ref::fast32::Fast32Plan;
///
/// # fn main() -> Result<(), modmath::Error> {
/// let field = NttField::new(256, 12289)?;
/// let plan = Fast32Plan::new(&field)?;
/// let mut data: Vec<u32> = (0..256).collect();
/// let orig = data.clone();
/// plan.forward(&mut data);
/// plan.inverse(&mut data);
/// assert_eq!(data, orig);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fast32Plan {
    mont: Montgomery32,
    n: usize,
    log_n: u32,
    /// Per-stage twiddle tables in Montgomery form (forward).
    tw: Vec<Vec<u32>>,
    /// Same for ω⁻¹ (inverse).
    tw_inv: Vec<Vec<u32>>,
    /// `N⁻¹` in Montgomery form.
    n_inv_mont: u32,
}

impl Fast32Plan {
    /// Builds the tables.
    ///
    /// # Errors
    ///
    /// Propagates [`modmath::Error`] when the field's modulus exceeds the
    /// 32-bit datapath (`q ≥ 2³¹`).
    pub fn new(field: &NttField) -> Result<Self, modmath::Error> {
        let q64 = field.modulus();
        if q64 >= 1 << 31 {
            return Err(modmath::Error::BadModulus {
                q: q64,
                reason: "fast32 plan requires q < 2^31",
            });
        }
        let q = q64 as u32;
        let mont = Montgomery32::new(q)?;
        let n = field.n();
        let log_n = n.trailing_zeros();
        let build = |w: u64| -> Vec<Vec<u32>> {
            (0..log_n)
                .map(|s| {
                    let m = 1usize << s;
                    let step = modmath::arith::pow_mod(w, (n >> (s + 1)) as u64, q64) as u32;
                    let step_mont = mont.to_mont(step);
                    let mut tws = Vec::with_capacity(m);
                    let mut cur = mont.one();
                    for _ in 0..m {
                        tws.push(cur);
                        cur = mont.mul(cur, step_mont);
                    }
                    tws
                })
                .collect()
        };
        let n_inv = modmath::arith::inv_mod(n as u64, q64)? as u32;
        Ok(Self {
            mont,
            n,
            log_n,
            tw: build(field.root_of_unity()),
            tw_inv: build(field.root_of_unity_inv()),
            n_inv_mont: mont.to_mont(n_inv),
        })
    }

    /// Transform length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The modulus.
    pub fn modulus(&self) -> u32 {
        self.mont.modulus()
    }

    /// Forward cyclic NTT, natural order in and out.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn forward(&self, data: &mut [u32]) {
        assert_eq!(data.len(), self.n, "length mismatch");
        bitrev_permute(data);
        self.dit(data, false);
    }

    /// Inverse cyclic NTT, natural order in and out, with `N⁻¹` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn inverse(&self, data: &mut [u32]) {
        assert_eq!(data.len(), self.n, "length mismatch");
        bitrev_permute(data);
        self.dit(data, true);
        for x in data.iter_mut() {
            // Plain value times Montgomery-form N⁻¹: one REDC.
            *x = self.mont.redc(*x as u64 * self.n_inv_mont as u64);
        }
    }

    fn dit(&self, data: &mut [u32], inverse: bool) {
        let mont = &self.mont;
        let tables = if inverse { &self.tw_inv } else { &self.tw };
        for s in 0..self.log_n {
            let m = 1usize << s;
            let tws = &tables[s as usize];
            for k in (0..self.n).step_by(2 * m) {
                for j in 0..m {
                    // Plain data × Montgomery twiddle → plain product.
                    let t = mont.redc(data[k + j + m] as u64 * tws[j] as u64);
                    let u = data[k + j];
                    data[k + j] = mont.add(u, t);
                    data[k + j + m] = mont.sub(u, t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::NttPlan;

    fn field(n: usize) -> NttField {
        NttField::with_bits(n, 30).expect("field exists")
    }

    #[test]
    fn matches_u64_plan() {
        for n in [4usize, 64, 1024] {
            let f = field(n);
            let fast = Fast32Plan::new(&f).unwrap();
            let slow = NttPlan::new(f);
            let q = slow.modulus();
            let data64: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % q).collect();
            let mut a: Vec<u32> = data64.iter().map(|&x| x as u32).collect();
            let mut b = data64;
            fast.forward(&mut a);
            slow.forward(&mut b);
            assert!(a.iter().zip(&b).all(|(&x, &y)| x as u64 == y), "n={n}");
        }
    }

    #[test]
    fn roundtrip() {
        let f = field(512);
        let plan = Fast32Plan::new(&f).unwrap();
        let q = plan.modulus();
        let orig: Vec<u32> = (0..512u32)
            .map(|i| i.wrapping_mul(2654435761) % q)
            .collect();
        let mut v = orig.clone();
        plan.forward(&mut v);
        plan.inverse(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn rejects_oversized_modulus() {
        // A 62-bit field cannot use the 32-bit datapath.
        let f = NttField::with_bits(64, 40).unwrap();
        assert!(Fast32Plan::new(&f).is_err());
    }
}
