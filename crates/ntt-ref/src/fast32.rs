//! 32-bit façade over the shared Shoup/Harvey lazy datapath — the
//! *strong* software baseline.
//!
//! Historically this module carried its own tuned kernel (a Montgomery
//! datapath, mirroring the paper's CU arithmetic). Now that every
//! software transform runs the Shoup lazy-reduction kernel in
//! [`crate::plan::NttPlan`] whenever `q < 2⁶²`, there is exactly **one**
//! tuned kernel in the workspace, and this plan is a thin `u32 ↔ u64`
//! adapter over it: same capability contract (`q < 2³¹`), same API, used
//! by the experiment harness to make the "x86 (measured)" comparison as
//! honest as possible. The hardware Montgomery model itself lives on in
//! [`modmath::montgomery`], where the PIM CU simulation uses it.

use crate::plan::NttPlan;
use modmath::prime::NttField;
use std::sync::Mutex;

/// A prepared length-`N` forward/inverse NTT over a `< 2³¹` prime,
/// backed by the shared Shoup-lazy datapath.
///
/// # Example
///
/// ```
/// use modmath::prime::NttField;
/// use ntt_ref::fast32::Fast32Plan;
///
/// # fn main() -> Result<(), modmath::Error> {
/// let field = NttField::new(256, 12289)?;
/// let plan = Fast32Plan::new(&field)?;
/// let mut data: Vec<u32> = (0..256).collect();
/// let orig = data.clone();
/// plan.forward(&mut data);
/// plan.inverse(&mut data);
/// assert_eq!(data, orig);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Fast32Plan {
    plan: NttPlan,
    /// Reused widening buffer so a transform costs no allocation in the
    /// common case — this plan is a *measured* baseline, and allocator
    /// time is not kernel time. A `Mutex` (not `RefCell`) keeps the plan
    /// `Sync`; concurrent callers fall back to a local buffer instead of
    /// blocking.
    scratch: Mutex<Vec<u64>>,
}

impl Clone for Fast32Plan {
    fn clone(&self) -> Self {
        Self {
            plan: self.plan.clone(),
            scratch: Mutex::new(vec![0u64; self.plan.n()]),
        }
    }
}

impl Fast32Plan {
    /// Builds the tables.
    ///
    /// # Errors
    ///
    /// Returns [`modmath::Error::BadModulus`] when the field's modulus
    /// exceeds the 32-bit datapath (`q ≥ 2³¹`).
    pub fn new(field: &NttField) -> Result<Self, modmath::Error> {
        let q = field.modulus();
        if q >= 1 << 31 {
            return Err(modmath::Error::BadModulus {
                q,
                reason: "fast32 plan requires q < 2^31",
            });
        }
        let plan = NttPlan::new(*field);
        debug_assert!(plan.uses_lazy(), "q < 2^31 is always inside the lazy bound");
        let scratch = Mutex::new(vec![0u64; plan.n()]);
        Ok(Self { plan, scratch })
    }

    /// Transform length.
    pub fn n(&self) -> usize {
        self.plan.n()
    }

    /// The modulus.
    pub fn modulus(&self) -> u32 {
        self.plan.modulus() as u32
    }

    /// Forward cyclic NTT, natural order in and out.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn forward(&self, data: &mut [u32]) {
        self.run(data, |plan, buf| plan.forward(buf));
    }

    /// Inverse cyclic NTT, natural order in and out, with `N⁻¹` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn inverse(&self, data: &mut [u32]) {
        self.run(data, |plan, buf| plan.inverse(buf));
    }

    fn run(&self, data: &mut [u32], f: impl FnOnce(&NttPlan, &mut [u64])) {
        assert_eq!(data.len(), self.plan.n(), "length mismatch");
        let mut guard;
        let mut local;
        let buf: &mut Vec<u64> = match self.scratch.try_lock() {
            Ok(g) => {
                guard = g;
                &mut guard
            }
            // Another thread holds the scratch (or a prior panic
            // poisoned it): pay one allocation instead of blocking.
            Err(_) => {
                local = vec![0u64; data.len()];
                &mut local
            }
        };
        for (b, &x) in buf.iter_mut().zip(data.iter()) {
            *b = u64::from(x);
        }
        f(&self.plan, buf);
        for (d, &x) in data.iter_mut().zip(buf.iter()) {
            *d = x as u32; // outputs are reduced mod q < 2^31
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(n: usize) -> NttField {
        NttField::with_bits(n, 30).expect("field exists")
    }

    #[test]
    fn matches_u64_plan() {
        for n in [4usize, 64, 1024] {
            let f = field(n);
            let fast = Fast32Plan::new(&f).unwrap();
            let slow = NttPlan::new(f);
            let q = slow.modulus();
            let data64: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % q).collect();
            let mut a: Vec<u32> = data64.iter().map(|&x| x as u32).collect();
            let mut b = data64;
            fast.forward(&mut a);
            slow.forward(&mut b);
            assert!(a.iter().zip(&b).all(|(&x, &y)| x as u64 == y), "n={n}");
        }
    }

    #[test]
    fn roundtrip() {
        let f = field(512);
        let plan = Fast32Plan::new(&f).unwrap();
        let q = plan.modulus();
        let orig: Vec<u32> = (0..512u32)
            .map(|i| i.wrapping_mul(2654435761) % q)
            .collect();
        let mut v = orig.clone();
        plan.forward(&mut v);
        plan.inverse(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn rejects_oversized_modulus() {
        // A 40-bit field cannot use the 32-bit datapath.
        let f = NttField::with_bits(64, 40).unwrap();
        assert!(Fast32Plan::new(&f).is_err());
    }
}
