//! 32-bit façade over the shared Shoup/Harvey lazy datapath — the
//! *strong* software baseline.
//!
//! Historically this module carried its own tuned kernel (a Montgomery
//! datapath, mirroring the paper's CU arithmetic). Now that every
//! software transform runs the Shoup lazy-reduction kernel in
//! [`crate::plan::NttPlan`] whenever `q < 2⁶²`, there is exactly **one**
//! tuned kernel in the workspace, and this plan is a thin `u32 ↔ u64`
//! adapter over it: same capability contract (`q < 2³¹`), same API, used
//! by the experiment harness to make the "x86 (measured)" comparison as
//! honest as possible. The hardware Montgomery model itself lives on in
//! [`modmath::montgomery`], where the PIM CU simulation uses it.

use crate::plan::NttPlan;
use modmath::prime::NttField;
use std::cell::RefCell;

/// A prepared length-`N` forward/inverse NTT over a `< 2³¹` prime,
/// backed by the shared Shoup-lazy datapath.
///
/// # Example
///
/// ```
/// use modmath::prime::NttField;
/// use ntt_ref::fast32::Fast32Plan;
///
/// # fn main() -> Result<(), modmath::Error> {
/// let field = NttField::new(256, 12289)?;
/// let plan = Fast32Plan::new(&field)?;
/// let mut data: Vec<u32> = (0..256).collect();
/// let orig = data.clone();
/// plan.forward(&mut data);
/// plan.inverse(&mut data);
/// assert_eq!(data, orig);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fast32Plan {
    plan: NttPlan,
}

thread_local! {
    /// Reused widening buffer so a transform costs no allocation in the
    /// steady state — this plan is a *measured* baseline, and allocator
    /// time is not kernel time. Per-thread (not a shared `Mutex`) so
    /// concurrent service workers transforming through one shared plan
    /// never serialize or contend on scratch space.
    static SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Reused per-polynomial widening buffers for the batch entry points
    /// (one `Vec<u64>` per batch slot, recycled across calls).
    static BATCH_SCRATCH: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
}

impl Fast32Plan {
    /// Builds the tables.
    ///
    /// # Errors
    ///
    /// Returns [`modmath::Error::BadModulus`] when the field's modulus
    /// exceeds the 32-bit datapath (`q ≥ 2³¹`).
    pub fn new(field: &NttField) -> Result<Self, modmath::Error> {
        let q = field.modulus();
        if q >= 1 << 31 {
            return Err(modmath::Error::BadModulus {
                q,
                reason: "fast32 plan requires q < 2^31",
            });
        }
        let plan = NttPlan::new(*field);
        debug_assert!(plan.uses_lazy(), "q < 2^31 is always inside the lazy bound");
        Ok(Self { plan })
    }

    /// Transform length.
    pub fn n(&self) -> usize {
        self.plan.n()
    }

    /// The modulus.
    pub fn modulus(&self) -> u32 {
        self.plan.modulus() as u32 // analyzer: allow(raw_residue_op) — q < 2^31 checked by Fast32Plan::new.
    }

    /// Forward cyclic NTT, natural order in and out.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn forward(&self, data: &mut [u32]) {
        self.run(data, |plan, buf| plan.forward(buf));
    }

    /// Inverse cyclic NTT, natural order in and out, with `N⁻¹` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn inverse(&self, data: &mut [u32]) {
        self.run(data, |plan, buf| plan.inverse(buf));
    }

    /// Forward cyclic NTT of a whole batch through the lane-batched SoA
    /// kernel ([`crate::lanes`]) — the u32 datapath rides the same lane
    /// kernel as the u64 one instead of keeping a second scalar loop.
    /// Returns how many polynomials rode the lane kernel (the ragged tail
    /// runs scalar).
    ///
    /// # Panics
    ///
    /// Panics if any polynomial's length differs from `self.n()`.
    pub fn forward_batch(&self, polys: &mut [Vec<u32>]) -> usize {
        self.run_batch(polys, crate::lanes::forward_batch)
    }

    /// Inverse cyclic NTT of a whole batch (includes `N⁻¹` scaling);
    /// lane-batched counterpart of [`Self::inverse`]. Returns how many
    /// polynomials rode the lane kernel.
    ///
    /// # Panics
    ///
    /// Panics if any polynomial's length differs from `self.n()`.
    pub fn inverse_batch(&self, polys: &mut [Vec<u32>]) -> usize {
        self.run_batch(polys, crate::lanes::inverse_batch)
    }

    fn run_batch(
        &self,
        polys: &mut [Vec<u32>],
        f: fn(&NttPlan, &mut [Vec<u64>]) -> usize,
    ) -> usize {
        let n = self.plan.n();
        for p in polys.iter() {
            assert_eq!(p.len(), n, "length mismatch");
        }
        BATCH_SCRATCH.with(|scratch| {
            let mut bufs = scratch.borrow_mut();
            let want = polys.len().max(bufs.len());
            bufs.resize_with(want, Vec::new);
            for (buf, p) in bufs.iter_mut().zip(polys.iter()) {
                buf.clear();
                buf.extend(p.iter().map(|&x| u64::from(x)));
            }
            let lanes_done = f(&self.plan, &mut bufs[..polys.len()]);
            for (p, buf) in polys.iter_mut().zip(bufs.iter()) {
                for (d, &x) in p.iter_mut().zip(buf.iter()) {
                    *d = x as u32; // analyzer: allow(raw_residue_op) — outputs are reduced mod q < 2^31.
                }
            }
            lanes_done
        })
    }

    fn run(&self, data: &mut [u32], f: impl FnOnce(&NttPlan, &mut [u64])) {
        assert_eq!(data.len(), self.plan.n(), "length mismatch");
        SCRATCH.with(|scratch| {
            let mut buf = scratch.borrow_mut();
            buf.clear();
            buf.extend(data.iter().map(|&x| u64::from(x)));
            f(&self.plan, &mut buf);
            for (d, &x) in data.iter_mut().zip(buf.iter()) {
                *d = x as u32; // analyzer: allow(raw_residue_op) — outputs are reduced mod q < 2^31.
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(n: usize) -> NttField {
        NttField::with_bits(n, 30).expect("field exists")
    }

    #[test]
    fn matches_u64_plan() {
        for n in [4usize, 64, 1024] {
            let f = field(n);
            let fast = Fast32Plan::new(&f).unwrap();
            let slow = NttPlan::new(f);
            let q = slow.modulus();
            let data64: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % q).collect();
            let mut a: Vec<u32> = data64.iter().map(|&x| x as u32).collect();
            let mut b = data64;
            fast.forward(&mut a);
            slow.forward(&mut b);
            assert!(a.iter().zip(&b).all(|(&x, &y)| x as u64 == y), "n={n}");
        }
    }

    #[test]
    fn roundtrip() {
        let f = field(512);
        let plan = Fast32Plan::new(&f).unwrap();
        let q = plan.modulus();
        let orig: Vec<u32> = (0..512u32)
            .map(|i| i.wrapping_mul(2654435761) % q)
            .collect();
        let mut v = orig.clone();
        plan.forward(&mut v);
        plan.inverse(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn batch_rides_the_lane_kernel_and_matches_scalar() {
        let f = field(256);
        let plan = Fast32Plan::new(&f).unwrap();
        let q = plan.modulus();
        // 11 polynomials: one full lane group + a ragged scalar tail.
        let orig: Vec<Vec<u32>> = (0..11u32)
            .map(|t| {
                (0..256u32)
                    .map(|i| i.wrapping_mul(2654435761).wrapping_add(t * 97) % q)
                    .collect()
            })
            .collect();
        let mut batch = orig.clone();
        assert_eq!(plan.forward_batch(&mut batch), crate::lanes::LANE_WIDTH);
        let mut expect = orig.clone();
        for e in expect.iter_mut() {
            plan.forward(e);
        }
        assert_eq!(batch, expect);
        assert_eq!(plan.inverse_batch(&mut batch), crate::lanes::LANE_WIDTH);
        assert_eq!(batch, orig);
    }

    #[test]
    fn rejects_oversized_modulus() {
        // A 40-bit field cannot use the 32-bit datapath.
        let f = NttField::with_bits(64, 40).unwrap();
        assert!(Fast32Plan::new(&f).is_err());
    }

    /// Contention pin: one shared plan driven from many threads at once
    /// must stay correct with per-thread scratch — no shared lock exists
    /// to serialize on (the old `Mutex<Vec<u64>>` scratch made every
    /// concurrent caller either queue or allocate).
    #[test]
    fn concurrent_threads_share_one_plan_without_serializing() {
        use std::sync::Arc;

        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Fast32Plan>();

        let f = field(256);
        let plan = Arc::new(Fast32Plan::new(&f).unwrap());
        let q = plan.modulus();
        // Mixed lengths per thread exercise scratch resizing across
        // calls on the same thread-local buffer.
        let small = Arc::new(Fast32Plan::new(&field(64)).unwrap());
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let plan = plan.clone();
                let small = small.clone();
                s.spawn(move || {
                    for round in 0..50u32 {
                        let orig: Vec<u32> = (0..256u32)
                            .map(|i| (i.wrapping_mul(2654435761) ^ t ^ round) % q)
                            .collect();
                        let mut v = orig.clone();
                        plan.forward(&mut v);
                        plan.inverse(&mut v);
                        assert_eq!(v, orig, "thread {t} round {round}");
                        let sq = small.modulus();
                        let sorig: Vec<u32> = (0..64u32).map(|i| (i * 97 + t) % sq).collect();
                        let mut sv = sorig.clone();
                        small.forward(&mut sv);
                        small.inverse(&mut sv);
                        assert_eq!(sv, sorig, "thread {t} round {round} (small)");
                    }
                });
            }
        });
    }
}
