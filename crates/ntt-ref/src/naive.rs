//! Naive O(N²) transforms — the ground truth every fast path is tested
//! against.

use modmath::arith::{mul_mod, pow_mod};
use modmath::prime::NttField;

/// Evaluates `X[k] = Σ_n x[n]·ω^(nk) mod q` directly.
///
/// # Panics
///
/// Panics if `input.len() != field.n()`.
///
/// # Example
///
/// ```
/// use modmath::prime::NttField;
///
/// # fn main() -> Result<(), modmath::Error> {
/// let f = NttField::with_bits(4, 13)?;
/// let x = vec![1, 0, 0, 0];
/// // The transform of a delta is the all-ones vector.
/// assert_eq!(ntt_ref::naive::ntt(&f, &x), vec![1, 1, 1, 1]);
/// # Ok(())
/// # }
/// ```
pub fn ntt(field: &NttField, input: &[u64]) -> Vec<u64> {
    transform(field, input, field.root_of_unity(), 1)
}

/// Evaluates the inverse transform `x[n] = N⁻¹·Σ_k X[k]·ω^(-nk) mod q`.
///
/// # Panics
///
/// Panics if `input.len() != field.n()`.
pub fn intt(field: &NttField, input: &[u64]) -> Vec<u64> {
    transform(field, input, field.root_of_unity_inv(), field.n_inv())
}

/// Negacyclic forward transform: `X[k] = Σ_n x[n]·ψ^n·ω^(nk)`.
///
/// # Panics
///
/// Panics if `input.len() != field.n()`.
pub fn ntt_negacyclic(field: &NttField, input: &[u64]) -> Vec<u64> {
    let q = field.modulus();
    let psi = field.psi();
    let mut weighted = Vec::with_capacity(input.len());
    let mut p = 1u64;
    for &x in input {
        weighted.push(mul_mod(x, p, q));
        p = mul_mod(p, psi, q);
    }
    ntt(field, &weighted)
}

/// Negacyclic inverse transform (with all scaling applied).
///
/// # Panics
///
/// Panics if `input.len() != field.n()`.
pub fn intt_negacyclic(field: &NttField, input: &[u64]) -> Vec<u64> {
    let q = field.modulus();
    let psi_inv = field.psi_inv();
    let mut out = intt(field, input);
    let mut p = 1u64;
    for x in out.iter_mut() {
        *x = mul_mod(*x, p, q);
        p = mul_mod(p, psi_inv, q);
    }
    out
}

/// Schoolbook cyclic convolution (`Z_q[X]/(X^N - 1)`), for convolution-
/// theorem tests.
///
/// # Panics
///
/// Panics if the operand lengths differ.
pub fn cyclic_convolution(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "operand lengths differ");
    let n = a.len();
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let k = (i + j) % n;
            out[k] = modmath::arith::add_mod(out[k], mul_mod(ai, bj, q), q);
        }
    }
    out
}

/// Schoolbook negacyclic convolution (`Z_q[X]/(X^N + 1)`).
///
/// # Panics
///
/// Panics if the operand lengths differ.
pub fn negacyclic_convolution(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "operand lengths differ");
    let n = a.len();
    let mut out = vec![0u64; n];
    for i in 0..n {
        for j in 0..n {
            let prod = mul_mod(a[i], b[j], q);
            if i + j < n {
                out[i + j] = modmath::arith::add_mod(out[i + j], prod, q);
            } else {
                let k = i + j - n; // X^N = -1 wraps with a sign flip
                out[k] = modmath::arith::sub_mod(out[k], prod, q);
            }
        }
    }
    out
}

fn transform(field: &NttField, input: &[u64], w: u64, scale: u64) -> Vec<u64> {
    let n = field.n();
    assert_eq!(input.len(), n, "length mismatch");
    let q = field.modulus();
    (0..n)
        .map(|k| {
            let mut acc = 0u64;
            for (i, &x) in input.iter().enumerate() {
                let tw = pow_mod(w, (i * k) as u64, q);
                acc = modmath::arith::add_mod(acc, mul_mod(x, tw, q), q);
            }
            mul_mod(acc, scale, q)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::arith::add_mod;

    fn field(n: usize) -> NttField {
        NttField::with_bits(n, 20).expect("field exists")
    }

    #[test]
    fn delta_transforms_to_ones() {
        let f = field(8);
        let mut x = vec![0u64; 8];
        x[0] = 1;
        assert_eq!(ntt(&f, &x), vec![1; 8]);
    }

    #[test]
    fn ones_transform_to_scaled_delta() {
        let f = field(8);
        let x = vec![1u64; 8];
        let mut expect = vec![0u64; 8];
        expect[0] = 8;
        assert_eq!(ntt(&f, &x), expect);
    }

    #[test]
    fn roundtrip() {
        let f = field(16);
        let x: Vec<u64> = (0..16).map(|i| (i * 31 + 5) % f.modulus()).collect();
        assert_eq!(intt(&f, &ntt(&f, &x)), x);
        assert_eq!(intt_negacyclic(&f, &ntt_negacyclic(&f, &x)), x);
    }

    #[test]
    fn linearity() {
        let f = field(8);
        let q = f.modulus();
        let a: Vec<u64> = (0..8).map(|i| (i * 3 + 1) % q).collect();
        let b: Vec<u64> = (0..8).map(|i| (i * i) % q).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| add_mod(x, y, q)).collect();
        let ta = ntt(&f, &a);
        let tb = ntt(&f, &b);
        let tsum = ntt(&f, &sum);
        for k in 0..8 {
            assert_eq!(tsum[k], add_mod(ta[k], tb[k], q));
        }
    }

    #[test]
    fn convolution_theorem_cyclic() {
        let f = field(8);
        let q = f.modulus();
        let a: Vec<u64> = (0..8).map(|i| (7 * i + 2) % q).collect();
        let b: Vec<u64> = (0..8).map(|i| (5 * i + 1) % q).collect();
        let ta = ntt(&f, &a);
        let tb = ntt(&f, &b);
        let prod: Vec<u64> = ta
            .iter()
            .zip(&tb)
            .map(|(&x, &y)| mul_mod(x, y, q))
            .collect();
        assert_eq!(intt(&f, &prod), cyclic_convolution(&a, &b, q));
    }

    #[test]
    fn convolution_theorem_negacyclic() {
        let f = field(8);
        let q = f.modulus();
        let a: Vec<u64> = (0..8).map(|i| (11 * i + 3) % q).collect();
        let b: Vec<u64> = (0..8).map(|i| (13 * i + 7) % q).collect();
        let ta = ntt_negacyclic(&f, &a);
        let tb = ntt_negacyclic(&f, &b);
        let prod: Vec<u64> = ta
            .iter()
            .zip(&tb)
            .map(|(&x, &y)| mul_mod(x, y, q))
            .collect();
        assert_eq!(
            intt_negacyclic(&f, &prod),
            negacyclic_convolution(&a, &b, q)
        );
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // (X^(N-1))² = X^(2N-2) = -X^(N-2) in Z_q[X]/(X^N+1).
        let q = field(4).modulus();
        let mut a = vec![0u64; 4];
        a[3] = 1;
        let c = negacyclic_convolution(&a, &a, q);
        assert_eq!(c, vec![0, 0, q - 1, 0]);
    }
}
