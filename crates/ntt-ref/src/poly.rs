//! Polynomial arithmetic in `Z_q[X]/(X^N ± 1)` built on the fast
//! transforms — the operation FHE actually needs (paper Eq. (1):
//! `a∗b = NTT⁻¹(NTT(a) ⊙ NTT(b))`).
//!
//! The three transforms of a product run on the plan's Shoup-lazy
//! datapath whenever the modulus allows (`q < 2⁶²`), including the `ψ`
//! weighting passes, which use the plan's precomputed `ψ` quotients. The
//! Hadamard product itself stays on widening multiplies: both operands
//! vary per request, so no Shoup quotient can be precomputed for them.

use crate::plan::NttPlan;
use modmath::arith::{add_mod, mul_mod, sub_mod};

/// Pointwise (Hadamard) product of two equal-length residue vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn pointwise(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "operand lengths differ");
    a.iter().zip(b).map(|(&x, &y)| mul_mod(x, y, q)).collect()
}

/// Coefficient-wise sum.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "operand lengths differ");
    a.iter().zip(b).map(|(&x, &y)| add_mod(x, y, q)).collect()
}

/// Coefficient-wise difference.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "operand lengths differ");
    a.iter().zip(b).map(|(&x, &y)| sub_mod(x, y, q)).collect()
}

/// Cyclic polynomial product in `Z_q[X]/(X^N - 1)` via three transforms.
///
/// # Panics
///
/// Panics if either operand's length differs from `plan.n()`.
///
/// # Example
///
/// ```
/// use modmath::prime::NttField;
/// use ntt_ref::plan::NttPlan;
///
/// # fn main() -> Result<(), modmath::Error> {
/// let plan = NttPlan::new(NttField::with_bits(4, 13)?);
/// // (1 + X) * (1 + X) = 1 + 2X + X²
/// let c = ntt_ref::poly::mul_cyclic(&plan, &[1, 1, 0, 0], &[1, 1, 0, 0]);
/// assert_eq!(c, vec![1, 2, 1, 0]);
/// # Ok(())
/// # }
/// ```
pub fn mul_cyclic(plan: &NttPlan, a: &[u64], b: &[u64]) -> Vec<u64> {
    let q = plan.modulus();
    let mut ta = a.to_vec();
    let mut tb = b.to_vec();
    plan.forward(&mut ta);
    plan.forward(&mut tb);
    let mut prod = pointwise(&ta, &tb, q);
    plan.inverse(&mut prod);
    prod
}

/// Negacyclic polynomial product in `Z_q[X]/(X^N + 1)` — the RLWE ring.
///
/// # Panics
///
/// Panics if either operand's length differs from `plan.n()`.
pub fn mul_negacyclic(plan: &NttPlan, a: &[u64], b: &[u64]) -> Vec<u64> {
    let q = plan.modulus();
    let mut ta = a.to_vec();
    let mut tb = b.to_vec();
    plan.forward_negacyclic(&mut ta);
    plan.forward_negacyclic(&mut tb);
    let mut prod = pointwise(&ta, &tb, q);
    plan.inverse_negacyclic(&mut prod);
    prod
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use modmath::prime::NttField;

    fn plan(n: usize) -> NttPlan {
        NttPlan::new(NttField::with_bits(n, 24).expect("field exists"))
    }

    #[test]
    fn cyclic_matches_schoolbook() {
        let p = plan(32);
        let q = p.modulus();
        let a: Vec<u64> = (0..32u64).map(|i| (i * 3 + 1) % q).collect();
        let b: Vec<u64> = (0..32u64).map(|i| (i * i + 2) % q).collect();
        assert_eq!(mul_cyclic(&p, &a, &b), naive::cyclic_convolution(&a, &b, q));
    }

    #[test]
    fn negacyclic_matches_schoolbook() {
        let p = plan(32);
        let q = p.modulus();
        let a: Vec<u64> = (0..32u64).map(|i| (i * 5 + 3) % q).collect();
        let b: Vec<u64> = (0..32u64).map(|i| (i * 7 + 4) % q).collect();
        assert_eq!(
            mul_negacyclic(&p, &a, &b),
            naive::negacyclic_convolution(&a, &b, q)
        );
    }

    #[test]
    fn multiply_by_one_is_identity() {
        let p = plan(16);
        let q = p.modulus();
        let a: Vec<u64> = (0..16u64).map(|i| (i + 9) % q).collect();
        let mut one = vec![0u64; 16];
        one[0] = 1;
        assert_eq!(mul_cyclic(&p, &a, &one), a);
        assert_eq!(mul_negacyclic(&p, &a, &one), a);
    }

    #[test]
    fn mul_by_x_rotates_with_sign_in_negacyclic_ring() {
        let p = plan(8);
        let q = p.modulus();
        let a: Vec<u64> = (1..=8u64).collect();
        let mut x = vec![0u64; 8];
        x[1] = 1;
        let c = mul_negacyclic(&p, &a, &x);
        // X·(a0..a7) = -a7 + a0·X + ... + a6·X^7
        let mut expect = vec![q - 8];
        expect.extend_from_slice(&a[..7]);
        assert_eq!(c, expect);
    }

    #[test]
    fn ring_ops_are_commutative_and_distributive() {
        let p = plan(16);
        let q = p.modulus();
        let a: Vec<u64> = (0..16u64).map(|i| (i * 11 + 1) % q).collect();
        let b: Vec<u64> = (0..16u64).map(|i| (i * 13 + 5) % q).collect();
        let c: Vec<u64> = (0..16u64).map(|i| (i * 17 + 7) % q).collect();
        assert_eq!(mul_negacyclic(&p, &a, &b), mul_negacyclic(&p, &b, &a));
        let left = mul_negacyclic(&p, &a, &add(&b, &c, q));
        let right = add(&mul_negacyclic(&p, &a, &b), &mul_negacyclic(&p, &a, &c), q);
        assert_eq!(left, right);
    }
}
