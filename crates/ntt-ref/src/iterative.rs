//! In-place iterative radix-2 transforms: Cooley–Tukey DIT and
//! Gentleman–Sande DIF.
//!
//! The DIT graph here is the *hardware-relevant* one: bit-reversed input,
//! natural output, butterfly spans growing 1, 2, 4, …, `N/2`, and within
//! every butterfly group the twiddles form the geometric sequence
//! `1, rω, rω², …` that the paper's Algorithm 2 generates on the fly
//! (`ω ← ω·rω`). The PIM mapping in `ntt-pim-core` slices exactly this
//! stage structure into the intra-atom / intra-row / inter-row regimes.
//!
//! Two datapaths implement each graph:
//!
//! * **Shoup/Harvey lazy reduction** ([`dit_from_bitrev_lazy`]) — the
//!   default whenever `q < 2⁶²`. Butterfly multiplies use the plan's
//!   precomputed Shoup quotients ([`modmath::shoup::mul_lazy`]) and the
//!   add/sub legs run unreduced in `[0, 4q)`; callers normalize once at
//!   the end.
//! * **128-bit widening** ([`dit_from_bitrev_widening`]) — the obviously
//!   correct fallback, one `u128` remainder per multiply, any `q < 2⁶³`.
//!
//! [`dit_from_bitrev`] and [`dif_to_bitrev`] auto-dispatch on
//! [`NttPlan::uses_lazy`] and always return fully reduced values, so
//! existing callers see identical results, just faster.

use crate::plan::NttPlan;
use modmath::arith::{add_mod, mul_mod, sub_mod};
use modmath::bound::{self, Lazy};
use modmath::shoup;

/// Cooley–Tukey DIT butterfly stages over data already in bit-reversed
/// order; produces natural order, fully reduced. No scaling is applied
/// (callers of the inverse must scale by `N⁻¹`). Dispatches to the lazy
/// kernel when the plan supports it.
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn dit_from_bitrev(plan: &NttPlan, data: &mut [u64], inverse: bool) {
    if plan.uses_lazy() {
        dit_from_bitrev_lazy(plan, data, inverse);
        shoup::normalize(data, plan.modulus());
    } else {
        dit_from_bitrev_widening(plan, data, inverse);
    }
}

/// The DIT stages on the widening datapath (one 128-bit remainder per
/// butterfly). Kept as the correctness anchor and the `q ≥ 2⁶²` fallback;
/// the kernel benches measure the lazy path against exactly this.
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn dit_from_bitrev_widening(plan: &NttPlan, data: &mut [u64], inverse: bool) {
    let n = plan.n();
    assert_eq!(data.len(), n, "length mismatch");
    let q = plan.modulus();
    for s in 0..plan.log_n() {
        let m = 1usize << s; // butterfly span
        let tws = plan.dit_stage_twiddles(s, inverse);
        for k in (0..n).step_by(2 * m) {
            for j in 0..m {
                // CT butterfly: multiply the odd leg *before* add/sub.
                let t = mul_mod(data[k + j + m], tws[j], q);
                let u = data[k + j];
                data[k + j] = add_mod(u, t, q);
                data[k + j + m] = sub_mod(u, t, q);
            }
        }
    }
}

/// The DIT stages on the Shoup/Harvey lazy datapath. Input values must be
/// `< 4q` (reduced inputs trivially qualify); outputs are **unnormalized**
/// in `[0, 4q)` — run [`modmath::shoup::normalize`] (or fold the reduction
/// into a following scaling pass) to return to `[0, q)`.
///
/// Every butterfly is: conditionally reduce the even leg to `[0, 2q)`,
/// one lazy Shoup multiply of the odd leg, then an unreduced add and a
/// `+2q` subtract, both `< 4q`. The leg composition runs on the
/// bound-typed ops of [`modmath::bound`], so the `[0, 4q)` stage
/// invariant is enforced by the type system at compile time; in debug
/// builds the values are additionally replayed by `debug_assert`.
///
/// # Panics
///
/// Panics if `data.len() != plan.n()` or the plan is not on the lazy
/// datapath ([`NttPlan::uses_lazy`]).
pub fn dit_from_bitrev_lazy(plan: &NttPlan, data: &mut [u64], inverse: bool) {
    let n = plan.n();
    assert_eq!(data.len(), n, "length mismatch");
    assert!(
        plan.uses_lazy(),
        "modulus exceeds the Shoup lazy bound (q < 2^62)"
    );
    let q = plan.modulus();
    for s in 0..plan.log_n() {
        let m = 1usize << s; // butterfly span
        let tws = plan.dit_stage_twiddles(s, inverse);
        let tws_shoup = plan.dit_stage_twiddles_shoup(s, inverse);
        for k in (0..n).step_by(2 * m) {
            for j in 0..m {
                // Harvey CT butterfly: legs live in [0, 4q) between
                // stages — Lazy<4> in, Lazy<4> out.
                let u = bound::reduce_twice(Lazy::assume(data[k + j], q), q);
                let t = bound::mul_lazy(Lazy::assume(data[k + j + m], q), tws[j], tws_shoup[j], q);
                data[k + j] = bound::add_lazy(u, t, q).get();
                data[k + j + m] = bound::sub_lazy(u, t, q).get();
            }
        }
    }
}

/// Gentleman–Sande DIF butterfly stages over natural-order data; produces
/// bit-reversed order, fully reduced. No scaling is applied. Dispatches to
/// the lazy kernel when the plan supports it.
///
/// The butterfly is the paper's Fig. 3 shape: `(a, b) → (a + b, (a − b)·ω)`
/// (multiply *after* subtract).
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn dif_to_bitrev(plan: &NttPlan, data: &mut [u64], inverse: bool) {
    if plan.uses_lazy() {
        dif_to_bitrev_lazy(plan, data, inverse);
        let q = plan.modulus();
        for x in data.iter_mut() {
            *x = shoup::reduce_once(*x, q);
        }
    } else {
        dif_to_bitrev_widening(plan, data, inverse);
    }
}

/// The DIF stages on the widening datapath.
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn dif_to_bitrev_widening(plan: &NttPlan, data: &mut [u64], inverse: bool) {
    let n = plan.n();
    assert_eq!(data.len(), n, "length mismatch");
    let q = plan.modulus();
    // DIF runs the DIT stages mirrored: spans N/2, N/4, ..., 1.
    for s in (0..plan.log_n()).rev() {
        let m = 1usize << s;
        let tws = plan.dit_stage_twiddles(s, inverse);
        for k in (0..n).step_by(2 * m) {
            for j in 0..m {
                let u = data[k + j];
                let v = data[k + j + m];
                data[k + j] = add_mod(u, v, q);
                data[k + j + m] = mul_mod(sub_mod(u, v, q), tws[j], q);
            }
        }
    }
}

/// The DIF stages on the lazy datapath. Inputs must be `< 2q`; every
/// intermediate stays in `[0, 2q)` (the GS butterfly multiplies *after*
/// the subtract, so the `[0, 4q)` sum/difference feeds straight into a
/// lazy multiply or a conditional subtract — `Lazy<2>` in, `Lazy<2>`
/// out, with the transient `Lazy<4>` absorbed inside the butterfly).
/// Outputs are in `[0, 2q)` — one [`modmath::shoup::reduce_once`] pass
/// normalizes.
///
/// # Panics
///
/// Panics if `data.len() != plan.n()` or the plan is not on the lazy
/// datapath.
pub fn dif_to_bitrev_lazy(plan: &NttPlan, data: &mut [u64], inverse: bool) {
    let n = plan.n();
    assert_eq!(data.len(), n, "length mismatch");
    assert!(
        plan.uses_lazy(),
        "modulus exceeds the Shoup lazy bound (q < 2^62)"
    );
    let q = plan.modulus();
    for s in (0..plan.log_n()).rev() {
        let m = 1usize << s;
        let tws = plan.dit_stage_twiddles(s, inverse);
        let tws_shoup = plan.dit_stage_twiddles_shoup(s, inverse);
        for k in (0..n).step_by(2 * m) {
            for j in 0..m {
                let u = Lazy::<2>::assume(data[k + j], q);
                let v = Lazy::<2>::assume(data[k + j + m], q);
                data[k + j] = bound::reduce_twice(bound::add_lazy(u, v, q), q).get();
                data[k + j + m] =
                    bound::mul_lazy(bound::sub_lazy(u, v, q), tws[j], tws_shoup[j], q).get();
            }
        }
    }
}

/// Forward NTT natural→natural via the DIF graph (bit reversal *after* the
/// butterflies instead of before). Numerically identical to
/// [`NttPlan::forward`]; exists to document and test the graph duality the
/// PIM inverse path uses.
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn forward_via_dif(plan: &NttPlan, data: &mut [u64]) {
    dif_to_bitrev(plan, data, false);
    modmath::bitrev::bitrev_permute(data);
}

/// Inverse NTT natural→natural via the DIF graph, including `N⁻¹` scaling.
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn inverse_via_dif(plan: &NttPlan, data: &mut [u64]) {
    dif_to_bitrev(plan, data, true);
    modmath::bitrev::bitrev_permute(data);
    let q = plan.modulus();
    let n_inv = plan.n_inv();
    if plan.uses_lazy() {
        let n_inv_shoup = plan.n_inv_shoup();
        for x in data.iter_mut() {
            *x = shoup::mul_mod(*x, n_inv, n_inv_shoup, q);
        }
    } else {
        for x in data.iter_mut() {
            *x = mul_mod(*x, n_inv, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use modmath::prime::NttField;

    fn plan(n: usize) -> NttPlan {
        NttPlan::new(NttField::with_bits(n, 26).expect("field exists"))
    }

    fn ramp(n: usize, q: u64) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 97 + 13) % q).collect()
    }

    #[test]
    fn dit_matches_naive_all_sizes() {
        for n in [2usize, 4, 8, 16, 32, 128, 512] {
            let p = plan(n);
            let x = ramp(n, p.modulus());
            let expect = naive::ntt(p.field(), &x);
            let mut got = x.clone();
            p.forward(&mut got);
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn lazy_and_widening_kernels_agree() {
        for n in [2usize, 8, 64, 256] {
            let p = plan(n);
            assert!(p.uses_lazy());
            for inverse in [false, true] {
                let mut lazy = ramp(n, p.modulus());
                let mut wide = lazy.clone();
                dit_from_bitrev(&p, &mut lazy, inverse);
                dit_from_bitrev_widening(&p, &mut wide, inverse);
                assert_eq!(lazy, wide, "dit n={n} inverse={inverse}");
                let mut lazy = ramp(n, p.modulus());
                let mut wide = lazy.clone();
                dif_to_bitrev(&p, &mut lazy, inverse);
                dif_to_bitrev_widening(&p, &mut wide, inverse);
                assert_eq!(lazy, wide, "dif n={n} inverse={inverse}");
            }
        }
    }

    #[test]
    fn lazy_kernel_outputs_stay_below_4q() {
        let p = plan(128);
        let q = p.modulus();
        let mut v = ramp(128, q);
        dit_from_bitrev_lazy(&p, &mut v, false);
        assert!(v.iter().all(|&x| x < 4 * q), "raw lazy outputs < 4q");
        modmath::shoup::normalize(&mut v, q);
        let mut expect = ramp(128, q);
        dit_from_bitrev_widening(&p, &mut expect, false);
        assert_eq!(v, expect);
    }

    #[test]
    fn dif_matches_dit() {
        for n in [2usize, 8, 64, 256] {
            let p = plan(n);
            let x = ramp(n, p.modulus());
            let mut a = x.clone();
            p.forward(&mut a);
            let mut b = x.clone();
            forward_via_dif(&p, &mut b);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn inverse_via_dif_matches_plan_inverse() {
        let p = plan(64);
        let x = ramp(64, p.modulus());
        let mut a = x.clone();
        p.forward(&mut a);
        let mut b = a.clone();
        p.inverse(&mut a);
        inverse_via_dif(&p, &mut b);
        assert_eq!(a, b);
        assert_eq!(a, x);
    }

    #[test]
    fn dif_then_pointwise_then_dit_needs_no_bitrev() {
        // The classic trick: DIF forward (bitrev output), pointwise multiply
        // in bit-reversed order, DIT inverse (bitrev input) — no explicit
        // permutation anywhere. This is what an FHE pipeline would run.
        let p = plan(32);
        let q = p.modulus();
        let a = ramp(32, q);
        let b: Vec<u64> = (0..32u64).map(|i| (i * i * 5 + 1) % q).collect();
        let mut ta = a.clone();
        let mut tb = b.clone();
        dif_to_bitrev(&p, &mut ta, false);
        dif_to_bitrev(&p, &mut tb, false);
        let mut prod: Vec<u64> = ta
            .iter()
            .zip(&tb)
            .map(|(&x, &y)| mul_mod(x, y, q))
            .collect();
        dit_from_bitrev(&p, &mut prod, true);
        for x in prod.iter_mut() {
            *x = mul_mod(*x, p.n_inv(), q);
        }
        assert_eq!(prod, naive::cyclic_convolution(&a, &b, q));
    }
}
