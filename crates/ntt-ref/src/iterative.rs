//! In-place iterative radix-2 transforms: Cooley–Tukey DIT and
//! Gentleman–Sande DIF.
//!
//! The DIT graph here is the *hardware-relevant* one: bit-reversed input,
//! natural output, butterfly spans growing 1, 2, 4, …, `N/2`, and within
//! every butterfly group the twiddles form the geometric sequence
//! `1, rω, rω², …` that the paper's Algorithm 2 generates on the fly
//! (`ω ← ω·rω`). The PIM mapping in `ntt-pim-core` slices exactly this
//! stage structure into the intra-atom / intra-row / inter-row regimes.

use crate::plan::NttPlan;
use modmath::arith::{add_mod, mul_mod, sub_mod};

/// Cooley–Tukey DIT butterfly stages over data already in bit-reversed
/// order; produces natural order. No scaling is applied (callers of the
/// inverse must scale by `N⁻¹`).
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn dit_from_bitrev(plan: &NttPlan, data: &mut [u64], inverse: bool) {
    let n = plan.n();
    assert_eq!(data.len(), n, "length mismatch");
    let q = plan.modulus();
    for s in 0..plan.log_n() {
        let m = 1usize << s; // butterfly span
        let tws = plan.dit_stage_twiddles(s, inverse);
        for k in (0..n).step_by(2 * m) {
            for j in 0..m {
                // CT butterfly: multiply the odd leg *before* add/sub.
                let t = mul_mod(data[k + j + m], tws[j], q);
                let u = data[k + j];
                data[k + j] = add_mod(u, t, q);
                data[k + j + m] = sub_mod(u, t, q);
            }
        }
    }
}

/// Gentleman–Sande DIF butterfly stages over natural-order data; produces
/// bit-reversed order. No scaling is applied.
///
/// The butterfly is the paper's Fig. 3 shape: `(a, b) → (a + b, (a − b)·ω)`
/// (multiply *after* subtract).
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn dif_to_bitrev(plan: &NttPlan, data: &mut [u64], inverse: bool) {
    let n = plan.n();
    assert_eq!(data.len(), n, "length mismatch");
    let q = plan.modulus();
    // DIF runs the DIT stages mirrored: spans N/2, N/4, ..., 1.
    for s in (0..plan.log_n()).rev() {
        let m = 1usize << s;
        let tws = plan.dit_stage_twiddles(s, inverse);
        for k in (0..n).step_by(2 * m) {
            for j in 0..m {
                let u = data[k + j];
                let v = data[k + j + m];
                data[k + j] = add_mod(u, v, q);
                data[k + j + m] = mul_mod(sub_mod(u, v, q), tws[j], q);
            }
        }
    }
}

/// Forward NTT natural→natural via the DIF graph (bit reversal *after* the
/// butterflies instead of before). Numerically identical to
/// [`NttPlan::forward`]; exists to document and test the graph duality the
/// PIM inverse path uses.
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn forward_via_dif(plan: &NttPlan, data: &mut [u64]) {
    dif_to_bitrev(plan, data, false);
    modmath::bitrev::bitrev_permute(data);
}

/// Inverse NTT natural→natural via the DIF graph, including `N⁻¹` scaling.
///
/// # Panics
///
/// Panics if `data.len() != plan.n()`.
pub fn inverse_via_dif(plan: &NttPlan, data: &mut [u64]) {
    dif_to_bitrev(plan, data, true);
    modmath::bitrev::bitrev_permute(data);
    let q = plan.modulus();
    let n_inv = plan.n_inv();
    for x in data.iter_mut() {
        *x = mul_mod(*x, n_inv, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use modmath::prime::NttField;

    fn plan(n: usize) -> NttPlan {
        NttPlan::new(NttField::with_bits(n, 26).expect("field exists"))
    }

    fn ramp(n: usize, q: u64) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 97 + 13) % q).collect()
    }

    #[test]
    fn dit_matches_naive_all_sizes() {
        for n in [2usize, 4, 8, 16, 32, 128, 512] {
            let p = plan(n);
            let x = ramp(n, p.modulus());
            let expect = naive::ntt(p.field(), &x);
            let mut got = x.clone();
            p.forward(&mut got);
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn dif_matches_dit() {
        for n in [2usize, 8, 64, 256] {
            let p = plan(n);
            let x = ramp(n, p.modulus());
            let mut a = x.clone();
            p.forward(&mut a);
            let mut b = x.clone();
            forward_via_dif(&p, &mut b);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn inverse_via_dif_matches_plan_inverse() {
        let p = plan(64);
        let x = ramp(64, p.modulus());
        let mut a = x.clone();
        p.forward(&mut a);
        let mut b = a.clone();
        p.inverse(&mut a);
        inverse_via_dif(&p, &mut b);
        assert_eq!(a, b);
        assert_eq!(a, x);
    }

    #[test]
    fn dif_then_pointwise_then_dit_needs_no_bitrev() {
        // The classic trick: DIF forward (bitrev output), pointwise multiply
        // in bit-reversed order, DIT inverse (bitrev input) — no explicit
        // permutation anywhere. This is what an FHE pipeline would run.
        let p = plan(32);
        let q = p.modulus();
        let a = ramp(32, q);
        let b: Vec<u64> = (0..32u64).map(|i| (i * i * 5 + 1) % q).collect();
        let mut ta = a.clone();
        let mut tb = b.clone();
        dif_to_bitrev(&p, &mut ta, false);
        dif_to_bitrev(&p, &mut tb, false);
        let mut prod: Vec<u64> = ta
            .iter()
            .zip(&tb)
            .map(|(&x, &y)| mul_mod(x, y, q))
            .collect();
        dit_from_bitrev(&p, &mut prod, true);
        for x in prod.iter_mut() {
            *x = mul_mod(*x, p.n_inv(), q);
        }
        assert_eq!(prod, naive::cyclic_convolution(&a, &b, q));
    }
}
