//! Lane-batched structure-of-arrays NTT datapath: [`LANE_WIDTH`]
//! polynomials per butterfly.
//!
//! The scalar Shoup-lazy kernel loads each twiddle pair `(w, w')` once per
//! butterfly and multiplies it against *one* residue. Service traffic is
//! the opposite shape — many same-`(n, q)` transforms per micro-batch — so
//! this module transposes a group of [`LANE_WIDTH`] polynomials into a
//! structure-of-arrays buffer (`soa[row · L + lane]`, one cache line per
//! row) and runs every butterfly on all `L` lanes in lockstep
//! ([`modmath::shoup::butterfly_lazy_lanes`]). Each twiddle load then
//! amortizes over `L` residues, the per-stage loop overhead is paid once
//! per group instead of once per polynomial, and the bit-reversal
//! permutation is fused into the pack copy instead of a separate
//! random-swap pass.
//!
//! Outputs of the whole-batch transforms are bit-identical to the scalar
//! entry points ([`NttPlan::forward`] and friends) — the proptests in
//! `tests/proptest_lanes.rs` pin this. For wide moduli the kernel performs
//! per lane *exactly* the scalar operation sequence of
//! [`crate::iterative::dit_from_bitrev_lazy`]; on the AVX2 backend,
//! narrow moduli (`q <` [`modmath::shoup::NARROW_MODULUS_BOUND`]) switch
//! the butterfly multiply to the 32-bit Shoup datapath
//! ([`modmath::shoup::mul_lazy_narrow`]), whose lazy representatives may
//! differ from the scalar legs by multiples of `q` but normalize to the
//! same `[0, q)` values.
//!
//! Two levels of API:
//!
//! * **Raw SoA legs** — [`forward_batch_lazy`] / [`inverse_batch_lazy`]
//!   run the `[0, 4q)` lazy butterfly stages over a packed SoA buffer
//!   (callers own pack/normalize/unpack). Like the scalar lazy kernels
//!   they panic when the modulus exceeds the Shoup lazy bound.
//! * **Whole-batch transforms** — [`forward_batch`], [`inverse_batch`],
//!   [`forward_negacyclic_batch`], [`inverse_negacyclic_batch`] and
//!   [`negacyclic_polymul_batch`] take a slice of polynomials, run full
//!   lane groups through a thread-local SoA scratch, finish the ragged
//!   tail (`batch % L ≠ 0`) with scalar calls, and transparently fall
//!   back to the scalar path for non-lazy (widening) plans. Each returns
//!   how many polynomials rode the lane kernel so callers can report
//!   batched coverage.
//!
//! For `N ≥ 4096` the SoA working set (`N · L · 8` bytes ≥ 256 KiB)
//! exceeds L1, so the stage driver reuses the row-centric split of
//! [`crate::blocked`]: all stages whose butterfly groups fit inside a
//! 512-row block (`BLOCK_ROWS`, 32 KiB of SoA data) run back to back per
//! block before the cross-block stages sweep the full buffer.
//!
//! The butterfly itself is the portable fixed-width loop by default
//! (autovectorized by the compiler); building with `--features simd` on
//! `x86_64` adds an AVX2 intrinsics backend selected at runtime —
//! [`kernel_label`] reports which one is live.

use core::cell::RefCell;

use modmath::arith;
use modmath::bitrev::bit_reverse;
use modmath::bound::{self, Lazy};
use modmath::shoup;

use crate::plan::NttPlan;
use crate::poly;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod simd;

/// Number of polynomials processed in lockstep per butterfly — one SoA
/// row is exactly one 64-byte cache line of `u64` residues.
pub const LANE_WIDTH: usize = 8;

/// Rows per cache block of the blocked stage schedule: `512 · L · 8` bytes
/// = 32 KiB of SoA data, sized to a typical L1 data cache.
const BLOCK_ROWS: usize = 512;

/// Minimum transform length that takes the blocked stage schedule (below
/// this the whole SoA buffer fits in L1/L2 and blocking only adds
/// bookkeeping).
const BLOCKED_MIN_N: usize = 4096;

thread_local! {
    // Shared SoA scratch buffers: one per thread, grown to the largest
    // `n · L` seen, so repeated service batches pay no allocation. Two
    // buffers because a polymul holds both operands in SoA form at once.
    static SOA_A: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static SOA_B: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The lane kernel the current build/host actually runs: `"lanes8"` for
/// the portable SoA-scalar path, `"lanes8-avx2"` when the `simd` feature
/// is compiled in and the CPU reports AVX2.
#[must_use]
pub fn kernel_label() -> &'static str {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::available() {
        return "lanes8-avx2";
    }
    "lanes8"
}

/// Forward DIT butterfly stages over a packed SoA buffer (rows already in
/// bit-reversed order, e.g. from [`pack_bitrev`]); the lane-batched
/// analogue of [`crate::iterative::dit_from_bitrev_lazy`]. Inputs must be
/// `< 4q`; outputs are **unnormalized** in `[0, 4q)` — run
/// [`modmath::shoup::normalize`] over the buffer to return to `[0, q)`.
///
/// # Panics
///
/// Panics if `soa.len() != plan.n() * LANE_WIDTH` or the plan is not on
/// the lazy datapath ([`NttPlan::uses_lazy`]).
pub fn forward_batch_lazy(plan: &NttPlan, soa: &mut [u64]) {
    assert_eq!(soa.len(), plan.n() * LANE_WIDTH, "SoA length mismatch");
    assert!(
        plan.uses_lazy(),
        "modulus exceeds the Shoup lazy bound (q < 2^62)"
    );
    dit_stages_soa(plan, soa, false);
}

/// Inverse DIT butterfly stages over a packed SoA buffer; same contract
/// as [`forward_batch_lazy`] (no `N⁻¹` scaling is applied — callers fold
/// it into the unpack pass exactly like [`NttPlan::inverse`] does).
///
/// # Panics
///
/// Panics if `soa.len() != plan.n() * LANE_WIDTH` or the plan is not on
/// the lazy datapath.
pub fn inverse_batch_lazy(plan: &NttPlan, soa: &mut [u64]) {
    assert_eq!(soa.len(), plan.n() * LANE_WIDTH, "SoA length mismatch");
    assert!(
        plan.uses_lazy(),
        "modulus exceeds the Shoup lazy bound (q < 2^62)"
    );
    dit_stages_soa(plan, soa, true);
}

/// One butterfly stage over a row range: `pass(range, stage_pairs, q)`.
type StagePass = fn(&mut [u64], &[u64], u64);
/// Two consecutive stages fused into one sweep:
/// `pass(range, lower_stage_pairs, upper_stage_pairs, q)`.
type StagePairPass = fn(&mut [u64], &[u64], &[u64], u64);

fn dit_stages_soa(plan: &NttPlan, soa: &mut [u64], inverse: bool) {
    assert_eq!(soa.len(), plan.n() * LANE_WIDTH, "SoA length mismatch");
    assert!(
        plan.uses_lazy(),
        "modulus exceeds the Shoup lazy bound (q < 2^62)"
    );
    // On the AVX2 backend, narrow moduli (q < 2³¹) take the 32-bit Shoup
    // multiply: congruent mod q to the generic legs (and identical once
    // normalized), with the quotient assembled from 32×32 products — one
    // `vpmuludq` each instead of an emulated 64×64 multiply. The portable
    // path always runs the generic legs: scalar-wise the narrow multiply
    // is no cheaper (same three multiplies plus an extra reduction), and
    // the generic fixed-width loop autovectorizes well.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::available() {
        if shoup::narrow(plan.modulus()) {
            drive_stages(
                plan,
                soa,
                inverse,
                simd::stage_pass_narrow,
                simd::stage_pair_pass_narrow,
            );
        } else {
            drive_stages(plan, soa, inverse, simd::stage_pass, simd::stage_pair_pass);
        }
        return;
    }
    drive_stages(
        plan,
        soa,
        inverse,
        portable_stage_pass::<false>,
        portable_stage_pair_pass::<false>,
    );
}

/// Runs the butterfly stages `stages.0..stages.1` over one row range,
/// fusing consecutive stages pairwise (each fused sweep loads and stores
/// every row once instead of twice); a trailing odd stage runs single.
fn run_stage_range(
    plan: &NttPlan,
    region: &mut [u64],
    stages: (u32, u32),
    inverse: bool,
    single: StagePass,
    pair: StagePairPass,
) {
    let q = plan.modulus();
    let mut s = stages.0;
    while s + 1 < stages.1 {
        pair(
            region,
            plan.dit_stage_twiddle_pairs(s, inverse),
            plan.dit_stage_twiddle_pairs(s + 1, inverse),
            q,
        );
        s += 2;
    }
    if s < stages.1 {
        single(region, plan.dit_stage_twiddle_pairs(s, inverse), q);
    }
}

/// Runs all butterfly stages. Small transforms sweep the full buffer; at
/// [`BLOCKED_MIN_N`] and above the first `log2(BLOCK_ROWS)` stages run
/// block-local (their butterfly groups span ≤ [`BLOCK_ROWS`] rows, so each
/// 32 KiB block is finished while still cache-hot) before the cross-block
/// stages sweep the full buffer.
fn drive_stages(
    plan: &NttPlan,
    soa: &mut [u64],
    inverse: bool,
    single: StagePass,
    pair: StagePairPass,
) {
    let log_n = plan.log_n();
    if plan.n() >= BLOCKED_MIN_N {
        let local = BLOCK_ROWS.trailing_zeros().min(log_n);
        for block in soa.chunks_exact_mut(BLOCK_ROWS * LANE_WIDTH) {
            run_stage_range(plan, block, (0, local), inverse, single, pair);
        }
        run_stage_range(plan, soa, (local, log_n), inverse, single, pair);
    } else {
        run_stage_range(plan, soa, (0, log_n), inverse, single, pair);
    }
}

/// One Harvey lazy butterfly on a single lane element, returned as values
/// so the fused two-stage pass can chain butterflies in registers. The
/// generic path is exactly the scalar leg sequence of
/// [`shoup::butterfly_lazy_lanes`]; the `NARROW` path first reduces the
/// odd leg under 2³² and multiplies through the narrow Shoup datapath —
/// same `[0, 4q)` leg bounds, congruent mod `q`. The composition runs on
/// the bound-typed ops of [`modmath::bound`] (`Lazy<4>` legs in and out),
/// so the stage invariant is enforced by the type system.
#[inline(always)]
fn butterfly_one<const NARROW: bool>(
    e: Lazy<4>,
    o: Lazy<4>,
    w: u64,
    ws: u64,
    q: u64,
) -> (Lazy<4>, Lazy<4>) {
    let u = bound::reduce_twice(e, q);
    let t = if NARROW {
        bound::mul_lazy_narrow(bound::reduce_twice(o, q), w, ws, q)
    } else {
        bound::mul_lazy(o, w, ws, q)
    };
    (bound::add_lazy(u, t, q), bound::sub_lazy(u, t, q))
}

/// [`butterfly_one`] over one full SoA row pair; the generic path is
/// [`shoup::butterfly_lazy_lanes`] verbatim.
#[inline(always)]
fn butterfly_row<const NARROW: bool>(
    e: &mut [u64; LANE_WIDTH],
    o: &mut [u64; LANE_WIDTH],
    w: u64,
    ws: u64,
    q: u64,
) {
    if NARROW {
        for l in 0..LANE_WIDTH {
            let (a, b) =
                butterfly_one::<true>(Lazy::assume(e[l], q), Lazy::assume(o[l], q), w, ws, q);
            e[l] = a.get();
            o[l] = b.get();
        }
    } else {
        shoup::butterfly_lazy_lanes(e, o, w, ws, q);
    }
}

/// Two consecutive butterfly stages fused into one sweep, portable path.
/// `lo` is stage `s`'s interleaved `(w, w')` table (`m = lo.len() / 2`),
/// `hi` stage `s+1`'s (`2m` pairs). A supergroup of `4m` rows
/// `[Q0|Q1|Q2|Q3]` holds two stage-`s` groups (`Q0/Q1` and `Q2/Q3`, both
/// using `lo[j]`) feeding one stage-`s+1` group (pairs `(Q0, Q2)[j]` with
/// `hi[j]` and `(Q1, Q3)[j]` with `hi[j+m]`). Chaining the two stages in
/// registers performs the identical per-element operation sequence as two
/// separate passes — bit-identical results with half the loads/stores.
fn portable_stage_pair_pass<const NARROW: bool>(soa: &mut [u64], lo: &[u64], hi: &[u64], q: u64) {
    let m = lo.len() / 2;
    debug_assert_eq!(hi.len(), 2 * lo.len(), "upper stage has 2m twiddles");
    let band = m * LANE_WIDTH;
    for group in soa.chunks_exact_mut(4 * band) {
        let (q01, q23) = group.split_at_mut(2 * band);
        let (q0, q1) = q01.split_at_mut(band);
        let (q2, q3) = q23.split_at_mut(band);
        let rows = q0
            .chunks_exact_mut(LANE_WIDTH)
            .zip(q1.chunks_exact_mut(LANE_WIDTH))
            .zip(
                q2.chunks_exact_mut(LANE_WIDTH)
                    .zip(q3.chunks_exact_mut(LANE_WIDTH)),
            );
        for (j, ((a, b), (c, d))) in rows.enumerate() {
            let (wl, wls) = (lo[2 * j], lo[2 * j + 1]);
            let (wa, was) = (hi[2 * j], hi[2 * j + 1]);
            let (wb, wbs) = (hi[2 * (j + m)], hi[2 * (j + m) + 1]);
            let a: &mut [u64; LANE_WIDTH] = a.try_into().expect("lane-width row");
            let b: &mut [u64; LANE_WIDTH] = b.try_into().expect("lane-width row");
            let c: &mut [u64; LANE_WIDTH] = c.try_into().expect("lane-width row");
            let d: &mut [u64; LANE_WIDTH] = d.try_into().expect("lane-width row");
            for i in 0..LANE_WIDTH {
                let (x0, x1) = butterfly_one::<NARROW>(
                    Lazy::assume(a[i], q),
                    Lazy::assume(b[i], q),
                    wl,
                    wls,
                    q,
                );
                let (x2, x3) = butterfly_one::<NARROW>(
                    Lazy::assume(c[i], q),
                    Lazy::assume(d[i], q),
                    wl,
                    wls,
                    q,
                );
                let (y0, y2) = butterfly_one::<NARROW>(x0, x2, wa, was, q);
                let (y1, y3) = butterfly_one::<NARROW>(x1, x3, wb, wbs, q);
                a[i] = y0.get();
                b[i] = y1.get();
                c[i] = y2.get();
                d[i] = y3.get();
            }
        }
    }
}

/// One butterfly stage over a row range, portable path. `pairs` is the
/// stage's interleaved `(w, w')` table
/// ([`NttPlan::dit_stage_twiddle_pairs`]); the stage's butterfly span `m`
/// is `pairs.len() / 2`, and the range must hold a whole number of
/// `2m`-row butterfly groups (always true for full buffers and for the
/// block-local ranges of [`drive_stages`]).
fn portable_stage_pass<const NARROW: bool>(soa: &mut [u64], pairs: &[u64], q: u64) {
    if let [w, ws] = *pairs {
        // Stage 0 (m = 1): one butterfly per group, so the per-group
        // band-splitting below would dominate — hoist the single twiddle
        // and walk adjacent row pairs directly.
        for group in soa.chunks_exact_mut(2 * LANE_WIDTH) {
            let (e, o) = group.split_at_mut(LANE_WIDTH);
            let e: &mut [u64; LANE_WIDTH] = e.try_into().expect("lane-width row");
            let o: &mut [u64; LANE_WIDTH] = o.try_into().expect("lane-width row");
            butterfly_row::<NARROW>(e, o, w, ws, q);
        }
        return;
    }
    let band = (pairs.len() / 2) * LANE_WIDTH;
    for group in soa.chunks_exact_mut(2 * band) {
        let (even, odd) = group.split_at_mut(band);
        for (pair, (e, o)) in pairs.chunks_exact(2).zip(
            even.chunks_exact_mut(LANE_WIDTH)
                .zip(odd.chunks_exact_mut(LANE_WIDTH)),
        ) {
            let e: &mut [u64; LANE_WIDTH] = e.try_into().expect("lane-width row");
            let o: &mut [u64; LANE_WIDTH] = o.try_into().expect("lane-width row");
            butterfly_row::<NARROW>(e, o, pair[0], pair[1], q);
        }
    }
}

/// Transposes a group of [`LANE_WIDTH`] equal-length polynomials into the
/// SoA buffer with the bit-reversal permutation fused into the copy: row
/// `r` holds lane values `group[l][bit_reverse(r)]`. This replaces the
/// scalar path's separate random-swap [`modmath::bitrev::bitrev_permute`]
/// pass with sequential row-major writes.
///
/// # Panics
///
/// Panics if `group.len() != LANE_WIDTH`, any polynomial's length is not
/// `2^log_n`, or `soa.len() != 2^log_n * LANE_WIDTH`.
pub fn pack_bitrev<P: AsRef<[u64]>>(group: &[P], log_n: u32, soa: &mut [u64]) {
    let n = 1usize << log_n;
    assert_eq!(group.len(), LANE_WIDTH, "group is not one lane batch");
    assert_eq!(soa.len(), n * LANE_WIDTH, "SoA length mismatch");
    for p in group {
        assert_eq!(p.as_ref().len(), n, "length mismatch");
    }
    for (r, row) in soa.chunks_exact_mut(LANE_WIDTH).enumerate() {
        let src = bit_reverse(r as u64, log_n) as usize;
        for (x, p) in row.iter_mut().zip(group) {
            *x = p.as_ref()[src];
        }
    }
}

/// Transposes the SoA buffer back into the group's polynomials (row `r`
/// → coefficient `r` of every lane), inverse of [`pack_bitrev`] after the
/// butterfly stages have undone the bit-reversed ordering.
///
/// # Panics
///
/// Panics if `group.len() != LANE_WIDTH` or lengths disagree with `soa`.
pub fn unpack(group: &mut [Vec<u64>], soa: &[u64]) {
    assert_eq!(group.len(), LANE_WIDTH, "group is not one lane batch");
    for p in group.iter() {
        assert_eq!(p.len() * LANE_WIDTH, soa.len(), "length mismatch");
    }
    for (r, row) in soa.chunks_exact(LANE_WIDTH).enumerate() {
        for (x, p) in row.iter().zip(group.iter_mut()) {
            p[r] = *x;
        }
    }
}

/// [`pack_bitrev`] with the negacyclic `ψ^i` pre-weighting fused into the
/// copy: the packed value is `group[l][src] · ψ^src mod q` — the same
/// per-element multiply [`NttPlan::forward_negacyclic`] applies before
/// its forward transform.
fn pack_bitrev_weighted<P: AsRef<[u64]>>(plan: &NttPlan, group: &[P], soa: &mut [u64]) {
    let n = plan.n();
    assert_eq!(group.len(), LANE_WIDTH, "group is not one lane batch");
    assert_eq!(soa.len(), n * LANE_WIDTH, "SoA length mismatch");
    for p in group {
        assert_eq!(p.as_ref().len(), n, "length mismatch");
    }
    let q = plan.modulus();
    let psi = plan.psi_pows();
    let psi_shoup = plan.psi_pows_shoup();
    let log_n = plan.log_n();
    for (r, row) in soa.chunks_exact_mut(LANE_WIDTH).enumerate() {
        let src = bit_reverse(r as u64, log_n) as usize;
        let (w, ws) = (psi[src], psi_shoup[src]);
        for (x, p) in row.iter_mut().zip(group) {
            *x = shoup::mul_mod(p.as_ref()[src], w, ws, q);
        }
    }
}

/// [`unpack`] with the final `[0, 4q) → [0, q)` normalization of the
/// forward transform fused into the transpose (same two conditional
/// subtracts as [`modmath::shoup::normalize`], one fewer buffer sweep).
fn unpack_normalized(group: &mut [Vec<u64>], soa: &[u64], q: u64) {
    assert_eq!(group.len(), LANE_WIDTH, "group is not one lane batch");
    for (r, row) in soa.chunks_exact(LANE_WIDTH).enumerate() {
        for (x, p) in row.iter().zip(group.iter_mut()) {
            p[r] = shoup::reduce_once(shoup::reduce_twice(*x, q), q);
        }
    }
}

/// [`unpack`] with the inverse-transform scaling fused in: every element
/// (still lazy in `[0, 4q)` from [`inverse_batch_lazy`]) is multiplied by
/// `N⁻¹` — and, for the negacyclic ring, by `ψ⁻ʳ` — exactly like the
/// scalar [`NttPlan::inverse`] / [`NttPlan::inverse_negacyclic`] tail
/// passes.
fn unpack_inverse_scaled(plan: &NttPlan, group: &mut [Vec<u64>], soa: &[u64], negacyclic: bool) {
    assert_eq!(group.len(), LANE_WIDTH, "group is not one lane batch");
    let q = plan.modulus();
    let n_inv = plan.n_inv();
    let n_inv_shoup = plan.n_inv_shoup();
    let psi_inv = plan.psi_inv_pows();
    let psi_inv_shoup = plan.psi_inv_pows_shoup();
    for (r, row) in soa.chunks_exact(LANE_WIDTH).enumerate() {
        for (x, p) in row.iter().zip(group.iter_mut()) {
            let mut v = shoup::mul_mod(*x, n_inv, n_inv_shoup, q);
            if negacyclic {
                v = shoup::mul_mod(v, psi_inv[r], psi_inv_shoup[r], q);
            }
            p[r] = v;
        }
    }
}

/// Applies the bit-reversal permutation to the SoA buffer as whole-row
/// swaps — the mid-polymul reordering between the forward spectrum
/// (natural row order) and the bit-reversed-input inverse stages.
fn bitrev_rows(soa: &mut [u64], log_n: u32) {
    let n = 1usize << log_n;
    for r in 0..n {
        let s = bit_reverse(r as u64, log_n) as usize;
        if s > r {
            for l in 0..LANE_WIDTH {
                soa.swap(r * LANE_WIDTH + l, s * LANE_WIDTH + l);
            }
        }
    }
}

/// The four whole-batch transform shapes sharing one group driver.
#[derive(Clone, Copy)]
enum Pass {
    Forward,
    Inverse,
    NegacyclicForward,
    NegacyclicInverse,
}

fn scalar_transform(plan: &NttPlan, poly: &mut [u64], pass: Pass) {
    match pass {
        Pass::Forward => plan.forward(poly),
        Pass::Inverse => plan.inverse(poly),
        Pass::NegacyclicForward => plan.forward_negacyclic(poly),
        Pass::NegacyclicInverse => plan.inverse_negacyclic(poly),
    }
}

fn transform_group(plan: &NttPlan, group: &mut [Vec<u64>], soa: &mut [u64], pass: Pass) {
    let q = plan.modulus();
    match pass {
        Pass::Forward => {
            pack_bitrev(group, plan.log_n(), soa);
            dit_stages_soa(plan, soa, false);
            unpack_normalized(group, soa, q);
        }
        Pass::NegacyclicForward => {
            pack_bitrev_weighted(plan, group, soa);
            dit_stages_soa(plan, soa, false);
            unpack_normalized(group, soa, q);
        }
        Pass::Inverse => {
            pack_bitrev(group, plan.log_n(), soa);
            dit_stages_soa(plan, soa, true);
            unpack_inverse_scaled(plan, group, soa, false);
        }
        Pass::NegacyclicInverse => {
            pack_bitrev(group, plan.log_n(), soa);
            dit_stages_soa(plan, soa, true);
            unpack_inverse_scaled(plan, group, soa, true);
        }
    }
}

fn run_batch(plan: &NttPlan, polys: &mut [Vec<u64>], pass: Pass) -> usize {
    let n = plan.n();
    for p in polys.iter() {
        assert_eq!(p.len(), n, "length mismatch");
    }
    if !plan.uses_lazy() {
        // Widening fallback: the lane kernel is Shoup-only, so oversized
        // moduli keep the scalar path for every polynomial.
        for p in polys.iter_mut() {
            scalar_transform(plan, p, pass);
        }
        return 0;
    }
    let mut lanes_done = 0;
    let mut groups = polys.chunks_exact_mut(LANE_WIDTH);
    SOA_A.with(|cell| {
        let mut soa = cell.borrow_mut();
        soa.resize(n * LANE_WIDTH, 0);
        for group in &mut groups {
            transform_group(plan, group, &mut soa, pass);
            lanes_done += LANE_WIDTH;
        }
    });
    for p in groups.into_remainder() {
        scalar_transform(plan, p, pass);
    }
    lanes_done
}

/// Forward cyclic NTT of every polynomial in the batch; full
/// [`LANE_WIDTH`]-sized groups ride the SoA lane kernel, the ragged tail
/// and every polynomial of a non-lazy (widening) plan take the scalar
/// [`NttPlan::forward`]. Outputs are bit-identical to the scalar path
/// either way. Returns the number of lane-processed polynomials.
///
/// # Panics
///
/// Panics if any polynomial's length differs from `plan.n()`.
pub fn forward_batch(plan: &NttPlan, polys: &mut [Vec<u64>]) -> usize {
    run_batch(plan, polys, Pass::Forward)
}

/// Inverse cyclic NTT of every polynomial in the batch (includes `N⁻¹`
/// scaling); lane/tail/fallback split as [`forward_batch`].
///
/// # Panics
///
/// Panics if any polynomial's length differs from `plan.n()`.
pub fn inverse_batch(plan: &NttPlan, polys: &mut [Vec<u64>]) -> usize {
    run_batch(plan, polys, Pass::Inverse)
}

/// Forward negacyclic NTT of every polynomial in the batch (`ψ`
/// pre-weighting fused into the SoA pack); lane/tail/fallback split as
/// [`forward_batch`].
///
/// # Panics
///
/// Panics if any polynomial's length differs from `plan.n()`.
pub fn forward_negacyclic_batch(plan: &NttPlan, polys: &mut [Vec<u64>]) -> usize {
    run_batch(plan, polys, Pass::NegacyclicForward)
}

/// Inverse negacyclic NTT of every polynomial in the batch (`N⁻¹` and
/// `ψ⁻¹` scaling fused into the SoA unpack); lane/tail/fallback split as
/// [`forward_batch`].
///
/// # Panics
///
/// Panics if any polynomial's length differs from `plan.n()`.
pub fn inverse_negacyclic_batch(plan: &NttPlan, polys: &mut [Vec<u64>]) -> usize {
    run_batch(plan, polys, Pass::NegacyclicInverse)
}

/// Negacyclic products `lhs[i] ← lhs[i] · rhs[i]` in `Z_q[X]/(X^N + 1)`
/// for a whole batch — the lane-batched [`poly::mul_negacyclic`]. Full
/// lane groups run both forward transforms, the Hadamard product, and the
/// inverse transform entirely in SoA form (two shared scratch buffers);
/// the ragged tail and non-lazy plans fall back to the scalar product.
/// Returns the number of lane-processed products.
///
/// # Panics
///
/// Panics if `lhs.len() != rhs.len()` or any polynomial's length differs
/// from `plan.n()`.
pub fn negacyclic_polymul_batch<P: AsRef<[u64]>>(
    plan: &NttPlan,
    lhs: &mut [Vec<u64>],
    rhs: &[P],
) -> usize {
    let n = plan.n();
    assert_eq!(lhs.len(), rhs.len(), "batch lengths differ");
    for p in lhs.iter() {
        assert_eq!(p.len(), n, "length mismatch");
    }
    for p in rhs.iter() {
        assert_eq!(p.as_ref().len(), n, "length mismatch");
    }
    if !plan.uses_lazy() {
        for (a, b) in lhs.iter_mut().zip(rhs) {
            *a = poly::mul_negacyclic(plan, a, b.as_ref());
        }
        return 0;
    }
    let q = plan.modulus();
    let mut lanes_done = 0;
    let mut la = lhs.chunks_exact_mut(LANE_WIDTH);
    let mut rb = rhs.chunks_exact(LANE_WIDTH);
    SOA_A.with(|ca| {
        SOA_B.with(|cb| {
            let mut sa = ca.borrow_mut();
            let mut sb = cb.borrow_mut();
            sa.resize(n * LANE_WIDTH, 0);
            sb.resize(n * LANE_WIDTH, 0);
            for (ga, gb) in (&mut la).zip(&mut rb) {
                polymul_group(plan, ga, gb, &mut sa, &mut sb, q);
                lanes_done += LANE_WIDTH;
            }
        });
    });
    for (a, b) in la.into_remainder().iter_mut().zip(rb.remainder()) {
        *a = poly::mul_negacyclic(plan, a, b.as_ref());
    }
    lanes_done
}

/// One lane group of a negacyclic polymul, the SoA mirror of
/// [`poly::mul_negacyclic`]'s transform sequence. The Hadamard product
/// stays on widening multiplies for the same reason as the scalar path:
/// both operands vary per request, so no Shoup quotient exists for them.
fn polymul_group<P: AsRef<[u64]>>(
    plan: &NttPlan,
    ga: &mut [Vec<u64>],
    gb: &[P],
    sa: &mut [u64],
    sb: &mut [u64],
    q: u64,
) {
    pack_bitrev_weighted(plan, ga, sa);
    dit_stages_soa(plan, sa, false);
    pack_bitrev_weighted(plan, gb, sb);
    dit_stages_soa(plan, sb, false);
    // The spectra are still lazy in [0, 4q); the widening Hadamard product
    // reduces mod q anyway ((a·b) mod q = (a mod q · b mod q) mod q, and
    // 4q · 4q < 2¹²⁸), so the two normalize sweeps the scalar path pays
    // before its pointwise step are skipped with identical values out.
    for (x, y) in sa.iter_mut().zip(sb.iter()) {
        *x = arith::mul_mod(*x, *y, q);
    }
    // The spectra sit in natural row order; the inverse DIT stages expect
    // bit-reversed input, so reorder rows before descending.
    bitrev_rows(sa, plan.log_n());
    dit_stages_soa(plan, sa, true);
    unpack_inverse_scaled(plan, ga, sa, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::prime::NttField;

    fn plan(n: usize, bits: u32) -> NttPlan {
        NttPlan::new(NttField::with_bits(n, bits).expect("field exists"))
    }

    fn random_polys(count: usize, n: usize, q: u64, seed: u64) -> Vec<Vec<u64>> {
        let mut state = seed | 1;
        (0..count)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 2) % q
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn forward_batch_matches_scalar_including_blocked_sizes() {
        // 256 takes the flat schedule, 4096 the blocked one.
        for (n, bits) in [(8usize, 14u32), (256, 24), (4096, 50)] {
            let p = plan(n, bits);
            let mut batch = random_polys(LANE_WIDTH, n, p.modulus(), 7);
            let mut expect = batch.clone();
            for e in expect.iter_mut() {
                p.forward(e);
            }
            assert_eq!(forward_batch(&p, &mut batch), LANE_WIDTH);
            assert_eq!(batch, expect, "n={n}");
        }
    }

    #[test]
    fn inverse_batch_roundtrips_and_matches_scalar() {
        let p = plan(1024, 31);
        let orig = random_polys(LANE_WIDTH, 1024, p.modulus(), 11);
        let mut batch = orig.clone();
        forward_batch(&p, &mut batch);
        let mut expect = batch.clone();
        for e in expect.iter_mut() {
            p.inverse(e);
        }
        assert_eq!(inverse_batch(&p, &mut batch), LANE_WIDTH);
        assert_eq!(batch, expect);
        assert_eq!(batch, orig);
    }

    #[test]
    fn negacyclic_batch_matches_scalar() {
        let p = plan(128, 26);
        let orig = random_polys(LANE_WIDTH, 128, p.modulus(), 13);
        let mut batch = orig.clone();
        let mut expect = orig.clone();
        for e in expect.iter_mut() {
            p.forward_negacyclic(e);
        }
        assert_eq!(forward_negacyclic_batch(&p, &mut batch), LANE_WIDTH);
        assert_eq!(batch, expect);
        for e in expect.iter_mut() {
            p.inverse_negacyclic(e);
        }
        assert_eq!(inverse_negacyclic_batch(&p, &mut batch), LANE_WIDTH);
        assert_eq!(batch, expect);
        assert_eq!(batch, orig);
    }

    #[test]
    fn ragged_tail_takes_scalar_path_with_identical_results() {
        let p = plan(64, 20);
        // 11 = one full lane group + 3 scalar-tail polynomials.
        let mut batch = random_polys(11, 64, p.modulus(), 17);
        let mut expect = batch.clone();
        for e in expect.iter_mut() {
            p.forward(e);
        }
        assert_eq!(forward_batch(&p, &mut batch), LANE_WIDTH);
        assert_eq!(batch, expect);
    }

    #[test]
    fn polymul_batch_matches_scalar_product() {
        for n in [32usize, 4096] {
            let p = plan(n, 40);
            let lhs_orig = random_polys(LANE_WIDTH + 2, n, p.modulus(), 19);
            let rhs = random_polys(LANE_WIDTH + 2, n, p.modulus(), 23);
            let mut lhs = lhs_orig.clone();
            assert_eq!(negacyclic_polymul_batch(&p, &mut lhs, &rhs), LANE_WIDTH);
            for ((got, a), b) in lhs.iter().zip(&lhs_orig).zip(&rhs) {
                assert_eq!(got, &poly::mul_negacyclic(&p, a, b), "n={n}");
            }
        }
    }

    #[test]
    fn widening_plan_falls_back_to_scalar_and_reports_zero_lanes() {
        let field = NttField::with_bits(16, 63).expect("prime exists");
        let p = NttPlan::new(field);
        assert!(!p.uses_lazy());
        let orig = random_polys(LANE_WIDTH, 16, p.modulus(), 29);
        let mut batch = orig.clone();
        let mut expect = orig.clone();
        for e in expect.iter_mut() {
            p.forward(e);
        }
        assert_eq!(forward_batch(&p, &mut batch), 0);
        assert_eq!(batch, expect);
        let rhs = random_polys(LANE_WIDTH, 16, p.modulus(), 31);
        let mut lhs = orig.clone();
        assert_eq!(negacyclic_polymul_batch(&p, &mut lhs, &rhs), 0);
    }

    #[test]
    #[should_panic(expected = "lazy bound")]
    fn raw_lazy_legs_reject_widening_plans() {
        let field = NttField::with_bits(8, 63).expect("prime exists");
        let p = NttPlan::new(field);
        let mut soa = vec![0u64; 8 * LANE_WIDTH];
        forward_batch_lazy(&p, &mut soa);
    }

    #[test]
    fn raw_legs_match_scalar_lazy_kernel_per_lane() {
        // A 50-bit modulus stays on the generic (wide) datapath, where
        // the lane kernel's lazy legs are bit-identical to the scalar
        // kernel's — not just congruent.
        let p = plan(512, 50);
        let q = p.modulus();
        assert!(!shoup::narrow(q));
        let polys = random_polys(LANE_WIDTH, 512, q, 37);
        let mut soa = vec![0u64; 512 * LANE_WIDTH];
        pack_bitrev(&polys, p.log_n(), &mut soa);
        forward_batch_lazy(&p, &mut soa);
        assert!(soa.iter().all(|&x| x < 4 * q), "raw outputs stay < 4q");
        for (l, poly) in polys.iter().enumerate() {
            let mut expect = poly.clone();
            modmath::bitrev::bitrev_permute(&mut expect);
            crate::iterative::dit_from_bitrev_lazy(&p, &mut expect, false);
            let lane: Vec<u64> = (0..512).map(|r| soa[r * LANE_WIDTH + l]).collect();
            assert_eq!(lane, expect, "lane {l}");
        }
    }

    #[test]
    fn narrow_raw_legs_stay_bounded_and_congruent() {
        // A 31-bit modulus rides the narrow (32-bit Shoup) datapath: the
        // lazy representatives may differ from the scalar legs by
        // multiples of q, but every leg stays < 4q and congruent — so
        // normalization gives identical [0, q) outputs.
        let p = plan(512, 31);
        let q = p.modulus();
        assert!(shoup::narrow(q));
        let polys = random_polys(LANE_WIDTH, 512, q, 37);
        let mut soa = vec![0u64; 512 * LANE_WIDTH];
        pack_bitrev(&polys, p.log_n(), &mut soa);
        forward_batch_lazy(&p, &mut soa);
        assert!(soa.iter().all(|&x| x < 4 * q), "raw outputs stay < 4q");
        for (l, poly) in polys.iter().enumerate() {
            let mut expect = poly.clone();
            modmath::bitrev::bitrev_permute(&mut expect);
            crate::iterative::dit_from_bitrev_lazy(&p, &mut expect, false);
            for (r, &want) in expect.iter().enumerate() {
                let got = soa[r * LANE_WIDTH + l];
                assert_eq!(got % q, want % q, "lane {l} row {r}");
            }
        }
    }

    #[test]
    fn kernel_label_names_the_lane_width() {
        assert!(kernel_label().starts_with(&format!("lanes{LANE_WIDTH}")));
    }
}
