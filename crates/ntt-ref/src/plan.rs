//! Precomputed transform plans (twiddle tables and scaling constants).
//!
//! A [`NttPlan`] owns everything a length-`N` transform over `Z_q` needs:
//! per-stage twiddle tables for the DIT and DIF graphs (forward and
//! inverse), the `ψ` power tables for negacyclic weighting, and `N⁻¹`.
//! The per-stage *step* values ([`NttPlan::dit_stage_step`]) are the same
//! `rω` parameters the PIM memory controller feeds the hardware twiddle
//! factor generator, so the plan doubles as the MC's parameter source.
//!
//! Whenever the modulus fits the lazy bound (`q < 2⁶²`,
//! [`modmath::shoup::supports`]) the plan additionally carries Shoup
//! quotients for every twiddle and scaling constant, and the transforms
//! run the Harvey lazy-reduction kernels ([`crate::iterative`]) — one
//! `mulhi`-based multiply per butterfly instead of a 128-bit remainder,
//! with a single normalization pass at the end. Larger moduli fall back
//! to the widening kernels transparently; [`NttPlan::uses_lazy`] reports
//! which datapath a plan is on.

use modmath::arith::{mul_mod, pow_mod};
use modmath::bitrev::bitrev_permute;
use modmath::prime::NttField;
use modmath::shoup;

/// A prepared length-`N` NTT over `Z_q`.
///
/// # Example
///
/// ```
/// use modmath::prime::NttField;
/// use ntt_ref::plan::NttPlan;
///
/// # fn main() -> Result<(), modmath::Error> {
/// let plan = NttPlan::new(NttField::with_bits(16, 17)?);
/// let mut v: Vec<u64> = (0..16).collect();
/// let orig = v.clone();
/// plan.forward(&mut v);
/// assert_ne!(v, orig);
/// plan.inverse(&mut v);
/// assert_eq!(v, orig);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NttPlan {
    field: NttField,
    log_n: u32,
    /// `dit_tw[s][j] = ω^(j * n / 2^(s+1))` for stage `s` (0-indexed), the
    /// twiddles of one butterfly group (all groups share them).
    dit_tw: Vec<Vec<u64>>,
    /// Same tables for `ω⁻¹` (inverse transform).
    dit_tw_inv: Vec<Vec<u64>>,
    /// Shoup quotients matching `dit_tw` (empty stages when the modulus
    /// exceeds the lazy bound).
    dit_tw_shoup: Vec<Vec<u64>>,
    /// Shoup quotients matching `dit_tw_inv`.
    dit_tw_inv_shoup: Vec<Vec<u64>>,
    /// The SoA twiddle layout of the lane-batched kernel
    /// ([`crate::lanes`]): per stage, `(w, w')` interleaved as
    /// `[w₀, w'₀, w₁, w'₁, …]` so each butterfly group reads its twiddle
    /// and Shoup quotient from one contiguous pair. Built once per plan
    /// (and therefore once per [`crate::cache::PlanCache`] entry); empty
    /// stages when the modulus exceeds the lazy bound.
    dit_tw_pairs: Vec<Vec<u64>>,
    /// Same interleaved layout for the inverse twiddles.
    dit_tw_inv_pairs: Vec<Vec<u64>>,
    /// Per-stage geometric steps `ω^(N / 2^(s+1))`, stored at build.
    dit_steps: Vec<u64>,
    /// Same for `ω⁻¹`.
    dit_steps_inv: Vec<u64>,
    /// `ψ^i` for negacyclic pre-weighting.
    psi_pows: Vec<u64>,
    /// `ψ⁻ⁱ` for negacyclic post-weighting.
    psi_inv_pows: Vec<u64>,
    /// Shoup quotients of `psi_pows` (empty when not lazy).
    psi_pows_shoup: Vec<u64>,
    /// Shoup quotients of `psi_inv_pows` (empty when not lazy).
    psi_inv_pows_shoup: Vec<u64>,
    n_inv: u64,
    n_inv_shoup: u64,
    lazy: bool,
}

impl NttPlan {
    /// Builds the tables for a validated field.
    pub fn new(field: NttField) -> Self {
        let n = field.n();
        let q = field.modulus();
        let log_n = n.trailing_zeros();
        let lazy = shoup::supports(q);
        // Tables and the per-stage steps they are generated from. The
        // stage-`s` step is ω^(N/2^(s+1)); for s = 0 that is ω^(N/2) = −1,
        // which also serves as the defined "step" of the single-twiddle
        // stage (consistent with the hardware generator's formula).
        let build = |w: u64| -> (Vec<Vec<u64>>, Vec<u64>) {
            let steps: Vec<u64> = (0..log_n)
                .map(|s| pow_mod(w, (n >> (s + 1)) as u64, q))
                .collect();
            let tables = steps
                .iter()
                .enumerate()
                .map(|(s, &step)| {
                    let m = 1usize << s; // butterfly span at stage s
                    let mut tws = Vec::with_capacity(m);
                    let mut cur = 1u64;
                    for _ in 0..m {
                        tws.push(cur);
                        cur = mul_mod(cur, step, q);
                    }
                    tws
                })
                .collect();
            (tables, steps)
        };
        let quotients = |tables: &[Vec<u64>]| -> Vec<Vec<u64>> {
            if !lazy {
                return tables.iter().map(|_| Vec::new()).collect();
            }
            tables
                .iter()
                .map(|tws| tws.iter().map(|&w| shoup::precompute(w, q)).collect())
                .collect()
        };
        let w = field.root_of_unity();
        let w_inv = field.root_of_unity_inv();
        let psi = field.psi();
        let psi_inv = field.psi_inv();
        let mut psi_pows = Vec::with_capacity(n);
        let mut psi_inv_pows = Vec::with_capacity(n);
        let (mut p, mut pi) = (1u64, 1u64);
        for _ in 0..n {
            psi_pows.push(p);
            psi_inv_pows.push(pi);
            p = mul_mod(p, psi, q);
            pi = mul_mod(pi, psi_inv, q);
        }
        let psi_quotients = |pows: &[u64]| -> Vec<u64> {
            if !lazy {
                return Vec::new();
            }
            pows.iter().map(|&w| shoup::precompute(w, q)).collect()
        };
        let (dit_tw, dit_steps) = build(w);
        let (dit_tw_inv, dit_steps_inv) = build(w_inv);
        let pairs = |tables: &[Vec<u64>], shoups: &[Vec<u64>]| -> Vec<Vec<u64>> {
            tables
                .iter()
                .zip(shoups)
                .map(|(tws, tws_shoup)| {
                    tws.iter()
                        .zip(tws_shoup)
                        .flat_map(|(&w, &ws)| [w, ws])
                        .collect()
                })
                .collect()
        };
        let dit_tw_shoup = quotients(&dit_tw);
        let dit_tw_inv_shoup = quotients(&dit_tw_inv);
        let n_inv = field.n_inv();
        Self {
            field,
            log_n,
            dit_tw_pairs: pairs(&dit_tw, &dit_tw_shoup),
            dit_tw_inv_pairs: pairs(&dit_tw_inv, &dit_tw_inv_shoup),
            dit_tw_shoup,
            dit_tw_inv_shoup,
            dit_tw,
            dit_tw_inv,
            dit_steps,
            dit_steps_inv,
            psi_pows_shoup: psi_quotients(&psi_pows),
            psi_inv_pows_shoup: psi_quotients(&psi_inv_pows),
            psi_pows,
            psi_inv_pows,
            n_inv,
            n_inv_shoup: if lazy { shoup::precompute(n_inv, q) } else { 0 },
            lazy,
        }
    }

    /// The underlying field parameters.
    #[inline]
    pub fn field(&self) -> &NttField {
        &self.field
    }

    /// Transform length `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.field.n()
    }

    /// `log2(N)`, the stage count.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// The modulus `q`.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.field.modulus()
    }

    /// `N⁻¹ mod q`.
    #[inline]
    pub fn n_inv(&self) -> u64 {
        self.n_inv
    }

    /// The Shoup quotient of `N⁻¹` (only meaningful when
    /// [`Self::uses_lazy`]).
    #[inline]
    pub fn n_inv_shoup(&self) -> u64 {
        self.n_inv_shoup
    }

    /// Whether this plan runs the Shoup/Harvey lazy-reduction kernels
    /// (`q < 2⁶²`) rather than the 128-bit widening fallback.
    #[inline]
    pub fn uses_lazy(&self) -> bool {
        self.lazy
    }

    /// Twiddle table of DIT stage `s` (0-indexed): `2^s` entries shared by
    /// every butterfly group of the stage.
    #[inline]
    pub fn dit_stage_twiddles(&self, s: u32, inverse: bool) -> &[u64] {
        if inverse {
            &self.dit_tw_inv[s as usize]
        } else {
            &self.dit_tw[s as usize]
        }
    }

    /// Shoup quotients matching [`Self::dit_stage_twiddles`]. Empty when
    /// the plan is not on the lazy datapath.
    #[inline]
    pub fn dit_stage_twiddles_shoup(&self, s: u32, inverse: bool) -> &[u64] {
        if inverse {
            &self.dit_tw_inv_shoup[s as usize]
        } else {
            &self.dit_tw_shoup[s as usize]
        }
    }

    /// The SoA twiddle layout of DIT stage `s` for the lane-batched kernel:
    /// `(w, w')` interleaved as `[w₀, w'₀, w₁, w'₁, …]` (`2·2^s` words), so
    /// one contiguous read per butterfly group serves both the twiddle and
    /// its Shoup quotient. Empty when the plan is not on the lazy datapath.
    #[inline]
    pub fn dit_stage_twiddle_pairs(&self, s: u32, inverse: bool) -> &[u64] {
        if inverse {
            &self.dit_tw_inv_pairs[s as usize]
        } else {
            &self.dit_tw_pairs[s as usize]
        }
    }

    /// The geometric step `rω = ω^(N / 2^(s+1))` of DIT stage `s` — the
    /// value the PIM twiddle factor generator multiplies by per butterfly.
    /// Stored at plan build (one table lookup, no recomputation).
    #[inline]
    pub fn dit_stage_step(&self, s: u32, inverse: bool) -> u64 {
        if inverse {
            self.dit_steps_inv[s as usize]
        } else {
            self.dit_steps[s as usize]
        }
    }

    /// `ψ^i` table (negacyclic pre-weighting).
    #[inline]
    pub fn psi_pows(&self) -> &[u64] {
        &self.psi_pows
    }

    /// `ψ⁻ⁱ` table (negacyclic post-weighting).
    #[inline]
    pub fn psi_inv_pows(&self) -> &[u64] {
        &self.psi_inv_pows
    }

    /// Shoup quotients of [`Self::psi_pows`] (empty when not lazy).
    #[inline]
    pub fn psi_pows_shoup(&self) -> &[u64] {
        &self.psi_pows_shoup
    }

    /// Shoup quotients of [`Self::psi_inv_pows`] (empty when not lazy).
    #[inline]
    pub fn psi_inv_pows_shoup(&self) -> &[u64] {
        &self.psi_inv_pows_shoup
    }

    /// Forward cyclic NTT, natural order in and out.
    ///
    /// Performs the software bit-reversal the paper assigns to the CPU,
    /// then the DIT butterfly stages (lazy-reduction kernel whenever the
    /// modulus allows it).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn forward(&self, data: &mut [u64]) {
        assert_eq!(data.len(), self.n(), "length mismatch");
        bitrev_permute(data);
        crate::iterative::dit_from_bitrev(self, data, false);
    }

    /// Inverse cyclic NTT, natural order in and out (includes `N⁻¹` scaling).
    ///
    /// On the lazy datapath the final normalization is fused into the
    /// `N⁻¹` scaling multiply, so the whole inverse costs exactly one
    /// pass more than the butterfly stages.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn inverse(&self, data: &mut [u64]) {
        assert_eq!(data.len(), self.n(), "length mismatch");
        bitrev_permute(data);
        let q = self.modulus();
        if self.lazy {
            crate::iterative::dit_from_bitrev_lazy(self, data, true);
            for x in data.iter_mut() {
                // mul_lazy accepts the unnormalized [0, 4q) values, so one
                // Shoup multiply + conditional subtract finishes the job.
                *x = shoup::mul_mod(*x, self.n_inv, self.n_inv_shoup, q);
            }
        } else {
            crate::iterative::dit_from_bitrev_widening(self, data, true);
            for x in data.iter_mut() {
                *x = mul_mod(*x, self.n_inv, q);
            }
        }
    }

    /// Forward negacyclic NTT (for `Z_q[X]/(X^N + 1)`), natural order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn forward_negacyclic(&self, data: &mut [u64]) {
        assert_eq!(data.len(), self.n(), "length mismatch");
        let q = self.modulus();
        if self.lazy {
            for (x, (&p, &ps)) in data
                .iter_mut()
                .zip(self.psi_pows.iter().zip(&self.psi_pows_shoup))
            {
                *x = shoup::mul_mod(*x, p, ps, q);
            }
        } else {
            for (x, p) in data.iter_mut().zip(&self.psi_pows) {
                *x = mul_mod(*x, *p, q);
            }
        }
        self.forward(data);
    }

    /// Inverse negacyclic NTT, natural order (includes all scaling).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn inverse_negacyclic(&self, data: &mut [u64]) {
        assert_eq!(data.len(), self.n(), "length mismatch");
        self.inverse(data);
        let q = self.modulus();
        if self.lazy {
            for (x, (&p, &ps)) in data
                .iter_mut()
                .zip(self.psi_inv_pows.iter().zip(&self.psi_inv_pows_shoup))
            {
                *x = shoup::mul_mod(*x, p, ps, q);
            }
        } else {
            for (x, p) in data.iter_mut().zip(&self.psi_inv_pows) {
                *x = mul_mod(*x, *p, q);
            }
        }
    }

    /// Forward cyclic NTT of a whole batch through the lane-batched SoA
    /// kernel ([`crate::lanes`]); polynomials beyond the last full lane
    /// group (and every polynomial on non-lazy plans) run the scalar
    /// path. Returns how many polynomials rode the lane kernel.
    ///
    /// # Panics
    ///
    /// Panics if any polynomial's length differs from `self.n()`.
    pub fn forward_batch(&self, polys: &mut [Vec<u64>]) -> usize {
        crate::lanes::forward_batch(self, polys)
    }

    /// Inverse cyclic NTT of a whole batch (includes `N⁻¹` scaling);
    /// lane-batched counterpart of [`Self::inverse`]. Returns how many
    /// polynomials rode the lane kernel.
    ///
    /// # Panics
    ///
    /// Panics if any polynomial's length differs from `self.n()`.
    pub fn inverse_batch(&self, polys: &mut [Vec<u64>]) -> usize {
        crate::lanes::inverse_batch(self, polys)
    }

    /// Negacyclic polynomial products `lhs[i] ← lhs[i] * rhs[i]` in
    /// `Z_q[X]/(X^N + 1)` for a whole batch, lane-batched counterpart of
    /// [`crate::poly::mul_negacyclic`]. Returns how many products rode
    /// the lane kernel.
    ///
    /// # Panics
    ///
    /// Panics if `lhs.len() != rhs.len()` or any polynomial's length
    /// differs from `self.n()`.
    pub fn negacyclic_polymul_batch(&self, lhs: &mut [Vec<u64>], rhs: &[Vec<u64>]) -> usize {
        crate::lanes::negacyclic_polymul_batch(self, lhs, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(n: usize) -> NttPlan {
        NttPlan::new(NttField::with_bits(n, 31).expect("field exists"))
    }

    #[test]
    fn stage_twiddles_are_geometric() {
        let p = plan(64);
        let q = p.modulus();
        for s in 0..p.log_n() {
            let tws = p.dit_stage_twiddles(s, false);
            assert_eq!(tws.len(), 1 << s);
            assert_eq!(tws[0], 1);
            let step = p.dit_stage_step(s, false);
            for j in 1..tws.len() {
                assert_eq!(tws[j], mul_mod(tws[j - 1], step, q), "s={s} j={j}");
            }
        }
    }

    #[test]
    fn last_stage_step_is_primitive_root() {
        let p = plan(32);
        // Stage log_n - 1 has step ω^(N / 2^log_n) = ω.
        assert_eq!(
            p.dit_stage_step(p.log_n() - 1, false),
            p.field().root_of_unity()
        );
    }

    #[test]
    fn stage_zero_step_is_minus_one() {
        // The stored step of the single-twiddle stage keeps the hardware
        // generator's defined value ω^(N/2) = −1.
        for inverse in [false, true] {
            let p = plan(32);
            assert_eq!(p.dit_stage_step(0, inverse), p.modulus() - 1);
        }
    }

    #[test]
    fn shoup_tables_match_twiddles() {
        let p = plan(64);
        assert!(p.uses_lazy());
        let q = p.modulus();
        for s in 0..p.log_n() {
            for inverse in [false, true] {
                let tws = p.dit_stage_twiddles(s, inverse);
                let quot = p.dit_stage_twiddles_shoup(s, inverse);
                assert_eq!(tws.len(), quot.len());
                for (&w, &ws) in tws.iter().zip(quot) {
                    assert_eq!(ws, modmath::shoup::precompute(w, q));
                }
            }
        }
        assert_eq!(p.psi_pows_shoup().len(), p.psi_pows().len());
        assert_eq!(p.n_inv_shoup(), modmath::shoup::precompute(p.n_inv(), q));
    }

    #[test]
    fn twiddle_pairs_interleave_twiddle_and_quotient() {
        let p = plan(64);
        assert!(p.uses_lazy());
        for s in 0..p.log_n() {
            for inverse in [false, true] {
                let tws = p.dit_stage_twiddles(s, inverse);
                let quot = p.dit_stage_twiddles_shoup(s, inverse);
                let pairs = p.dit_stage_twiddle_pairs(s, inverse);
                assert_eq!(pairs.len(), 2 * tws.len());
                for j in 0..tws.len() {
                    assert_eq!(pairs[2 * j], tws[j], "s={s} j={j}");
                    assert_eq!(pairs[2 * j + 1], quot[j], "s={s} j={j}");
                }
            }
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [2usize, 4, 8, 64, 256, 1024] {
            let p = plan(n);
            let q = p.modulus();
            let mut v: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % q).collect();
            let orig = v.clone();
            p.forward(&mut v);
            p.inverse(&mut v);
            assert_eq!(v, orig, "n={n}");
        }
    }

    #[test]
    fn negacyclic_roundtrip() {
        let p = plan(128);
        let q = p.modulus();
        let mut v: Vec<u64> = (0..128u64).map(|i| (i * i + 1) % q).collect();
        let orig = v.clone();
        p.forward_negacyclic(&mut v);
        p.inverse_negacyclic(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn forward_rejects_wrong_length() {
        let p = plan(8);
        let mut v = vec![0u64; 4];
        p.forward(&mut v);
    }

    #[test]
    fn psi_tables_are_inverses() {
        let p = plan(16);
        let q = p.modulus();
        for i in 0..16 {
            assert_eq!(mul_mod(p.psi_pows()[i], p.psi_inv_pows()[i], q), 1);
        }
    }

    #[test]
    fn oversized_modulus_takes_the_widening_path() {
        // Largest NTT prime below 2^63 exceeds the 2^62 lazy bound.
        let field = NttField::with_bits(8, 63).expect("prime exists");
        assert!(field.modulus() >= modmath::shoup::LAZY_MODULUS_BOUND);
        let p = NttPlan::new(field);
        assert!(!p.uses_lazy());
        assert!(p.dit_stage_twiddles_shoup(0, false).is_empty());
        let q = p.modulus();
        let mut v: Vec<u64> = (0..8u64).map(|i| (i * 3 + 1) % q).collect();
        let orig = v.clone();
        p.forward(&mut v);
        p.inverse(&mut v);
        assert_eq!(v, orig);
    }
}
