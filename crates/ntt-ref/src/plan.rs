//! Precomputed transform plans (twiddle tables and scaling constants).
//!
//! A [`NttPlan`] owns everything a length-`N` transform over `Z_q` needs:
//! per-stage twiddle tables for the DIT and DIF graphs (forward and
//! inverse), the `ψ` power tables for negacyclic weighting, and `N⁻¹`.
//! The per-stage *step* values ([`NttPlan::dit_stage_step`]) are the same
//! `rω` parameters the PIM memory controller feeds the hardware twiddle
//! factor generator, so the plan doubles as the MC's parameter source.

use modmath::arith::{mul_mod, pow_mod};
use modmath::bitrev::bitrev_permute;
use modmath::prime::NttField;

/// A prepared length-`N` NTT over `Z_q`.
///
/// # Example
///
/// ```
/// use modmath::prime::NttField;
/// use ntt_ref::plan::NttPlan;
///
/// # fn main() -> Result<(), modmath::Error> {
/// let plan = NttPlan::new(NttField::with_bits(16, 17)?);
/// let mut v: Vec<u64> = (0..16).collect();
/// let orig = v.clone();
/// plan.forward(&mut v);
/// assert_ne!(v, orig);
/// plan.inverse(&mut v);
/// assert_eq!(v, orig);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NttPlan {
    field: NttField,
    log_n: u32,
    /// `dit_tw[s][j] = ω^(j * n / 2^(s+1))` for stage `s` (0-indexed), the
    /// twiddles of one butterfly group (all groups share them).
    dit_tw: Vec<Vec<u64>>,
    /// Same tables for `ω⁻¹` (inverse transform).
    dit_tw_inv: Vec<Vec<u64>>,
    /// `ψ^i` for negacyclic pre-weighting.
    psi_pows: Vec<u64>,
    /// `ψ⁻ⁱ` for negacyclic post-weighting.
    psi_inv_pows: Vec<u64>,
    n_inv: u64,
}

impl NttPlan {
    /// Builds the tables for a validated field.
    pub fn new(field: NttField) -> Self {
        let n = field.n();
        let q = field.modulus();
        let log_n = n.trailing_zeros();
        let build = |w: u64| -> Vec<Vec<u64>> {
            (0..log_n)
                .map(|s| {
                    let m = 1usize << s; // butterfly span at stage s
                    let step = pow_mod(w, (n >> (s + 1)) as u64, q);
                    let mut tws = Vec::with_capacity(m);
                    let mut cur = 1u64;
                    for _ in 0..m {
                        tws.push(cur);
                        cur = mul_mod(cur, step, q);
                    }
                    tws
                })
                .collect()
        };
        let w = field.root_of_unity();
        let w_inv = field.root_of_unity_inv();
        let psi = field.psi();
        let psi_inv = field.psi_inv();
        let mut psi_pows = Vec::with_capacity(n);
        let mut psi_inv_pows = Vec::with_capacity(n);
        let (mut p, mut pi) = (1u64, 1u64);
        for _ in 0..n {
            psi_pows.push(p);
            psi_inv_pows.push(pi);
            p = mul_mod(p, psi, q);
            pi = mul_mod(pi, psi_inv, q);
        }
        Self {
            field,
            log_n,
            dit_tw: build(w),
            dit_tw_inv: build(w_inv),
            psi_pows,
            psi_inv_pows,
            n_inv: field.n_inv(),
        }
    }

    /// The underlying field parameters.
    #[inline]
    pub fn field(&self) -> &NttField {
        &self.field
    }

    /// Transform length `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.field.n()
    }

    /// `log2(N)`, the stage count.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// The modulus `q`.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.field.modulus()
    }

    /// `N⁻¹ mod q`.
    #[inline]
    pub fn n_inv(&self) -> u64 {
        self.n_inv
    }

    /// Twiddle table of DIT stage `s` (0-indexed): `2^s` entries shared by
    /// every butterfly group of the stage.
    #[inline]
    pub fn dit_stage_twiddles(&self, s: u32, inverse: bool) -> &[u64] {
        if inverse {
            &self.dit_tw_inv[s as usize]
        } else {
            &self.dit_tw[s as usize]
        }
    }

    /// The geometric step `rω = ω^(N / 2^(s+1))` of DIT stage `s` — the
    /// value the PIM twiddle factor generator multiplies by per butterfly.
    #[inline]
    pub fn dit_stage_step(&self, s: u32, inverse: bool) -> u64 {
        let table = self.dit_stage_twiddles(s, inverse);
        if table.len() >= 2 {
            table[1]
        } else {
            // Stage 0 has a single unit twiddle; its step is irrelevant but
            // defined as ω^(N/2) = -1 for consistency with the formula.
            let w = if inverse {
                self.field.root_of_unity_inv()
            } else {
                self.field.root_of_unity()
            };
            pow_mod(w, (self.n() >> 1) as u64, self.modulus())
        }
    }

    /// `ψ^i` table (negacyclic pre-weighting).
    #[inline]
    pub fn psi_pows(&self) -> &[u64] {
        &self.psi_pows
    }

    /// `ψ⁻ⁱ` table (negacyclic post-weighting).
    #[inline]
    pub fn psi_inv_pows(&self) -> &[u64] {
        &self.psi_inv_pows
    }

    /// Forward cyclic NTT, natural order in and out.
    ///
    /// Performs the software bit-reversal the paper assigns to the CPU,
    /// then the DIT butterfly stages.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn forward(&self, data: &mut [u64]) {
        assert_eq!(data.len(), self.n(), "length mismatch");
        bitrev_permute(data);
        crate::iterative::dit_from_bitrev(self, data, false);
    }

    /// Inverse cyclic NTT, natural order in and out (includes `N⁻¹` scaling).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn inverse(&self, data: &mut [u64]) {
        assert_eq!(data.len(), self.n(), "length mismatch");
        bitrev_permute(data);
        crate::iterative::dit_from_bitrev(self, data, true);
        let q = self.modulus();
        for x in data.iter_mut() {
            *x = mul_mod(*x, self.n_inv, q);
        }
    }

    /// Forward negacyclic NTT (for `Z_q[X]/(X^N + 1)`), natural order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn forward_negacyclic(&self, data: &mut [u64]) {
        assert_eq!(data.len(), self.n(), "length mismatch");
        let q = self.modulus();
        for (x, p) in data.iter_mut().zip(&self.psi_pows) {
            *x = mul_mod(*x, *p, q);
        }
        self.forward(data);
    }

    /// Inverse negacyclic NTT, natural order (includes all scaling).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.n()`.
    pub fn inverse_negacyclic(&self, data: &mut [u64]) {
        assert_eq!(data.len(), self.n(), "length mismatch");
        self.inverse(data);
        let q = self.modulus();
        for (x, p) in data.iter_mut().zip(&self.psi_inv_pows) {
            *x = mul_mod(*x, *p, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(n: usize) -> NttPlan {
        NttPlan::new(NttField::with_bits(n, 31).expect("field exists"))
    }

    #[test]
    fn stage_twiddles_are_geometric() {
        let p = plan(64);
        let q = p.modulus();
        for s in 0..p.log_n() {
            let tws = p.dit_stage_twiddles(s, false);
            assert_eq!(tws.len(), 1 << s);
            assert_eq!(tws[0], 1);
            let step = p.dit_stage_step(s, false);
            for j in 1..tws.len() {
                assert_eq!(tws[j], mul_mod(tws[j - 1], step, q), "s={s} j={j}");
            }
        }
    }

    #[test]
    fn last_stage_step_is_primitive_root() {
        let p = plan(32);
        // Stage log_n - 1 has step ω^(N / 2^log_n) = ω.
        assert_eq!(
            p.dit_stage_step(p.log_n() - 1, false),
            p.field().root_of_unity()
        );
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [2usize, 4, 8, 64, 256, 1024] {
            let p = plan(n);
            let q = p.modulus();
            let mut v: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % q).collect();
            let orig = v.clone();
            p.forward(&mut v);
            p.inverse(&mut v);
            assert_eq!(v, orig, "n={n}");
        }
    }

    #[test]
    fn negacyclic_roundtrip() {
        let p = plan(128);
        let q = p.modulus();
        let mut v: Vec<u64> = (0..128u64).map(|i| (i * i + 1) % q).collect();
        let orig = v.clone();
        p.forward_negacyclic(&mut v);
        p.inverse_negacyclic(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn forward_rejects_wrong_length() {
        let p = plan(8);
        let mut v = vec![0u64; 4];
        p.forward(&mut v);
    }

    #[test]
    fn psi_tables_are_inverses() {
        let p = plan(16);
        let q = p.modulus();
        for i in 0..16 {
            assert_eq!(mul_mod(p.psi_pows()[i], p.psi_inv_pows()[i], q), 1);
        }
    }
}
