//! The `ntt-pim` command-line tool (thin wrapper over `ntt_pim_cli`).

use ntt_pim_cli::args::ParsedArgs;
use ntt_pim_cli::commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match ParsedArgs::parse(raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            std::process::exit(e.exit_code);
        }
    };
    match commands::dispatch(&parsed) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            if e.exit_code == 2 {
                eprintln!("{}", commands::USAGE);
            }
            std::process::exit(e.exit_code);
        }
    }
}
