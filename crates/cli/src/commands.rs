//! Subcommand implementations. Each returns its output as a `String` so
//! tests can assert on it; the binary prints to stdout.

use crate::args::ParsedArgs;
use crate::CliError;
use ntt_pim_core::config::{PimConfig, Topology};
use ntt_pim_core::device::{NttDirection, PimDevice};
use ntt_pim_core::layout::PolyLayout;
use ntt_pim_core::mapper::{map_ntt, MapperOptions, NttParams};
use ntt_pim_core::sched::schedule;
use std::fmt::Write as _;

/// Usage text for `help` and errors.
pub const USAGE: &str = "\
ntt-pim — row-centric DRAM-PIM NTT simulator (DAC'23 reproduction)

USAGE:
    ntt-pim <COMMAND> [OPTIONS]

COMMANDS:
    run      simulate one forward NTT and print the report
    sweep    latency table over polynomial lengths and buffer counts
    trace    dump the DRAM command trace of one NTT (textual format)
    verify   functional verification against the software reference
    polymul  on-device negacyclic polynomial product
    batch    schedule --jobs NTTs across --banks banks (per-bank queues)
    serve    closed-loop load test of the concurrent serving layer
    help     show this message

COMMON OPTIONS:
    --n <len>        polynomial length, power of two       [default: 1024]
    --nb <count>     atom buffers incl. primary            [default: 2]
    --clock <mhz>    CU clock in MHz                       [default: 1200]
    --q <modulus>    odd prime with 2N | q-1               [default: auto]
    --refresh        enable tREFI/tRFC refresh modeling
    --channels <c>   independent channels (private bus each) [default: 1]
    --ranks <r>      ranks per channel (own tRRD/tFAW window) [default: 1]
    --banks <k>      banks per rank (sweep/batch)          [default: 1]
    --nb <a,b,c>     (sweep) list of buffer counts         [default: 1,2,4,6]
    --lengths <...>  (sweep) list of lengths               [default: 256..8192]

BATCH OPTIONS:
    --jobs <k>       number of independent NTT jobs        [default: 16]
    --schedule <p>   lpt (cost-model bin-packing, async drain)
                     or round-robin (barrier waves)        [default: lpt]
    --lengths <...>  job lengths, cycled over the batch
                     (mixed sizes show the LPT gain)       [default: --n]
    --split          run job 0 as one large length---n NTT split across
                     the whole topology (four-step column/row sub-jobs
                     with a dependency barrier; requires --schedule lpt)
    --backend <b>    run the batch through one named backend-bus slot
                     instead of the raw executor: pim, cpu-lanes,
                     mentt, or bp-ntt (jobs outside the backend's
                     capability window are typed errors)

SERVE OPTIONS:
    --tenants <t>       concurrent closed-loop tenants        [default: 8]
    --requests <r>      total requests across tenants         [default: 64]
    --max-wait-us <w>   micro-batch flush deadline, µs        [default: 500]
    --queue-depth <d>   admission bound (then Busy)           [default: 256]
    --tenant-inflight <k>  per-tenant in-flight cap (0 = off) [default: 0]
    --lengths <...>     request lengths, cycled               [default: 256,1024,2048,4096]
    --devices <n>       simulated fleet size (replicas of the
                        serve topology, routed by predicted drain) [default: 1]
    --backends <list>   mixed backend fleet, name or name:count entries
                        from pim, cpu-lanes, mentt, bp-ntt (for example
                        pim:2,cpu-lanes:1); overrides --devices, routed
                        cost-aware per micro-batch shape
    --steal-threshold-us <t>  fleet imbalance tolerance before
                        batches split / workers steal, µs     [default: 0]
    --smoke             small verified run (CI): golden-check every response
    (serve defaults to the 2x2x4 topology; --channels/--ranks/--banks override;
     --devices > 1 appends a per-device fleet report)

The device topology is channels x ranks x banks: jobs fan across the
product (e.g. --channels 2 --ranks 2 --banks 4 = 16-way), with LPT
balancing channels first, then the banks within each channel.
";

/// Dispatches a parsed command line.
///
/// # Errors
///
/// [`CliError`] with a usage or runtime classification.
pub fn dispatch(args: &ParsedArgs) -> Result<String, CliError> {
    match args.command.as_str() {
        "run" => run(args),
        "sweep" => sweep(args),
        "trace" => trace(args),
        "verify" => verify(args),
        "polymul" => polymul(args),
        "batch" => batch(args),
        "serve" => serve(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::usage(format!(
            "unknown command `{other}`; try `ntt-pim help`"
        ))),
    }
}

fn config_from(args: &ParsedArgs) -> Result<PimConfig, CliError> {
    let nb: usize = args.get_or("nb", 2)?;
    let clock: u32 = args.get_or("clock", 1200)?;
    let topology = topology_from(args, 1)?;
    let config = PimConfig::hbm2e(nb)
        .with_cu_clock_mhz(clock)
        .with_topology(topology)
        .with_refresh(args.has_flag("refresh"));
    config.validate()?;
    Ok(config)
}

/// The `--channels/--ranks/--banks` device shape (banks defaulting per
/// subcommand: 1 for single-bank commands, 16 for `batch`).
fn topology_from(args: &ParsedArgs, default_banks: u32) -> Result<Topology, CliError> {
    Ok(Topology::new(
        args.get_or("channels", 1)?,
        args.get_or("ranks", 1)?,
        args.get_or("banks", default_banks)?,
    ))
}

fn modulus_for(args: &ParsedArgs, n: usize) -> Result<u32, CliError> {
    match args.options.get("q") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("bad value for --q: {v}"))),
        None => Ok(modmath::prime::find_ntt_prime(2 * n as u64, 31)? as u32),
    }
}

fn test_poly(n: usize, q: u32) -> Vec<u32> {
    (0..n as u32)
        .map(|i| i.wrapping_mul(2654435761) % q)
        .collect()
}

fn run(args: &ParsedArgs) -> Result<String, CliError> {
    let n: usize = args.get_or("n", 1024)?;
    let config = config_from(args)?;
    let q = modulus_for(args, n)?;
    let mut dev = PimDevice::new(config)?;
    let mut h = dev.load_polynomial_bitrev(0, &test_poly(n, q), q)?;
    let rep = dev.ntt_in_place(&mut h, NttDirection::Forward)?;
    let mut out = String::new();
    let _ = writeln!(out, "forward NTT  N={n}  q={q}  Nb={}", config.n_bufs);
    let _ = writeln!(out, "  latency      : {:>12.3} µs", rep.latency_us());
    let _ = writeln!(out, "  activations  : {:>12}", rep.activations());
    let _ = writeln!(
        out,
        "  refreshes    : {:>12}",
        rep.timeline.counters.refreshes
    );
    let _ = writeln!(out, "  commands     : {:>12}", rep.logical_commands);
    let _ = writeln!(out, "  C1 / C2      : {:>6} / {}", rep.c1_ops, rep.c2_ops);
    let _ = writeln!(out, "  energy       : {:>12.3} nJ", rep.energy.total_nj);
    let _ = writeln!(
        out,
        "  energy split : act {:.0}%  col {:.0}%  compute {:.0}%",
        rep.energy.act_share * 100.0,
        rep.energy.col_share * 100.0,
        rep.energy.compute_share * 100.0
    );
    Ok(out)
}

fn sweep(args: &ParsedArgs) -> Result<String, CliError> {
    let nbs: Vec<usize> = args.get_list_or("nb", vec![1, 2, 4, 6])?;
    let lengths: Vec<usize> =
        args.get_list_or("lengths", vec![256, 512, 1024, 2048, 4096, 8192])?;
    let clock: u32 = args.get_or("clock", 1200)?;
    let mut out = String::new();
    let _ = write!(out, "{:>7}", "N");
    for nb in &nbs {
        let _ = write!(out, " {:>12}", format!("Nb={nb} (µs)"));
    }
    let _ = writeln!(out);
    for &n in &lengths {
        let _ = write!(out, "{n:>7}");
        let q = modulus_for(args, n)?;
        for &nb in &nbs {
            if nb == 1 && n > 2048 {
                let _ = write!(out, " {:>12}", "-");
                continue;
            }
            let config = PimConfig::hbm2e(nb)
                .with_cu_clock_mhz(clock)
                .with_refresh(args.has_flag("refresh"));
            let layout = PolyLayout::new(&config, 0, n)?;
            let omega = modmath::prime::root_of_unity(n as u64, q as u64)? as u32;
            let program = map_ntt(
                &config,
                &layout,
                &NttParams { q, omega },
                &MapperOptions::default(),
            )?;
            let tl = schedule(&config, &program)?;
            let _ = write!(out, " {:>12.2}", tl.latency_us());
        }
        let _ = writeln!(out);
    }
    Ok(out)
}

fn trace(args: &ParsedArgs) -> Result<String, CliError> {
    let n: usize = args.get_or("n", 256)?;
    let config = config_from(args)?;
    let q = modulus_for(args, n)?;
    let layout = PolyLayout::new(&config, 0, n)?;
    let omega = modmath::prime::root_of_unity(n as u64, q as u64)? as u32;
    let program = map_ntt(
        &config,
        &layout,
        &NttParams { q, omega },
        &MapperOptions::default(),
    )?;
    let tl = schedule(&config, &program)?;
    Ok(dram_sim::trace::to_text(
        &tl.bank_trace(),
        config.timing.resolve().cycle_ps,
    ))
}

fn verify(args: &ParsedArgs) -> Result<String, CliError> {
    let n: usize = args.get_or("n", 1024)?;
    let config = config_from(args)?;
    let q = modulus_for(args, n)?;
    let mut dev = PimDevice::new(config)?;
    let poly = test_poly(n, q);
    let mut h = dev.load_polynomial_bitrev(0, &poly, q)?;
    dev.ntt_in_place(&mut h, NttDirection::Forward)?;
    let got = dev.read_polynomial(&h)?;

    // Reference through the independent software path.
    let psi = modmath::prime::root_of_unity(2 * n as u64, q as u64)?;
    let field = modmath::prime::NttField::with_psi(n, q as u64, psi)?;
    let plan = ntt_ref::plan::NttPlan::new(field);
    let mut expect: Vec<u64> = poly.iter().map(|&c| c as u64).collect();
    plan.forward(&mut expect);
    let mismatches = got
        .iter()
        .zip(&expect)
        .filter(|(&g, &e)| g as u64 != e)
        .count();
    if mismatches != 0 {
        return Err(CliError::runtime(format!(
            "verification FAILED: {mismatches}/{n} mismatching coefficients"
        )));
    }
    // And back.
    dev.ntt_in_place(&mut h, NttDirection::Inverse)?;
    if dev.read_polynomial(&h)? != poly {
        return Err(CliError::runtime("inverse roundtrip FAILED".to_string()));
    }
    Ok(format!(
        "verification OK: N={n}, q={q}, Nb={} — forward matches the software \
         NTT and inverse(forward(x)) == x\n",
        args.get_or("nb", 2usize)?
    ))
}

fn polymul(args: &ParsedArgs) -> Result<String, CliError> {
    let n: usize = args.get_or("n", 1024)?;
    let config = config_from(args)?;
    let q = modulus_for(args, n)?;
    let mut dev = PimDevice::new(config)?;
    let a = test_poly(n, q);
    let b: Vec<u32> = (0..n as u32).map(|i| (i * 7 + 3) % q).collect();
    let ha = dev.load_polynomial(0, &a, q)?;
    let hb = dev.load_polynomial(config.polymul_rhs_base(n), &b, q)?;
    let rep = dev.polymul_negacyclic(&ha, &hb)?;
    // Spot-check against the schoolbook product.
    let got = dev.read_polynomial(&ha)?;
    let a64: Vec<u64> = a.iter().map(|&v| v as u64).collect();
    let b64: Vec<u64> = b.iter().map(|&v| v as u64).collect();
    let expect = ntt_ref::naive::negacyclic_convolution(&a64, &b64, q as u64);
    if !got.iter().zip(&expect).all(|(&g, &e)| g as u64 == e) {
        return Err(CliError::runtime("polymul verification FAILED".to_string()));
    }
    Ok(format!(
        "on-device negacyclic polymul OK: N={n}, q={q}\n  latency: {:.2} µs, \
         {} activations, {:.2} nJ\n",
        rep.latency_us(),
        rep.activations(),
        rep.energy.total_nj
    ))
}

fn batch(args: &ParsedArgs) -> Result<String, CliError> {
    use ntt_pim::engine::batch::{BatchExecutor, NttJob, SchedulePolicy};
    use ntt_pim::engine::{CpuNttEngine, NttEngine};

    let n: usize = args.get_or("n", 1024)?;
    let jobs_n: usize = args.get_or("jobs", 16)?;
    if jobs_n == 0 {
        return Err(CliError::usage("--jobs must be at least 1"));
    }
    let topology = topology_from(args, 16)?;
    let nb: usize = args.get_or("nb", 2)?;
    let clock: u32 = args.get_or("clock", 1200)?;
    let policy: SchedulePolicy = args.get_or("schedule", SchedulePolicy::Lpt)?;
    // Mixed-size batches (the RNS workload): job j gets lengths[j % len].
    let lengths: Vec<usize> = args.get_list_or("lengths", vec![n])?;
    if lengths.is_empty() {
        return Err(CliError::usage("--lengths must name at least one length"));
    }
    let config = PimConfig::hbm2e(nb)
        .with_cu_clock_mhz(clock)
        .with_topology(topology)
        .with_refresh(args.has_flag("refresh"));
    config.validate()?;

    // One job per seed; all independent (the RNS/FHE pattern). With
    // --split, job 0 is the one large transform fanned across the
    // topology; the rest stay ordinary single-bank jobs riding along.
    let split = args.has_flag("split");
    let jobs: Vec<NttJob> = (0..jobs_n)
        .map(|j| {
            let nj = if split && j == 0 {
                n
            } else {
                lengths[j % lengths.len()]
            };
            let q = modulus_for(args, nj)?;
            let coeffs = (0..nj as u64)
                .map(|i| (i.wrapping_mul(2654435761) ^ j as u64) % q as u64)
                .collect();
            Ok(if split && j == 0 {
                NttJob::split_large(coeffs, q as u64)
            } else {
                NttJob::new(coeffs, q as u64)
            })
        })
        .collect::<Result<_, CliError>>()?;

    // --backend: drive the same jobs through one registered backend-bus
    // slot (the registry/dispatch path the serving layer routes over)
    // instead of the raw executor.
    if let Some(name) = args.options.get("backend") {
        return batch_on_backend(name, &jobs, config, policy, &lengths);
    }

    let mut exec = BatchExecutor::new(config)
        .map_err(|e| CliError::runtime(e.to_string()))?
        .with_policy(policy);
    // Sequential yardstick: the scheduler's own memoized per-job cost
    // estimates (single-bank simulated latency), summed.
    let sequential_ns: f64 = exec
        .plan(&jobs)
        .map_err(|e| CliError::runtime(e.to_string()))?
        .costs
        .iter()
        .sum();
    let out = exec
        .run(&jobs)
        .map_err(|e| CliError::runtime(e.to_string()))?;

    // Spot-check the first spectrum against the CPU golden engine.
    let mut golden = CpuNttEngine::golden();
    let mut expect = jobs[0].coeffs.clone();
    golden
        .forward(&mut expect, jobs[0].q)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    if out.spectra[0] != expect {
        return Err(CliError::runtime("batch verification FAILED".to_string()));
    }

    let lengths_str = lengths
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut outp = String::new();
    let _ = writeln!(
        outp,
        "batched NTTs  lengths={lengths_str}  jobs={jobs_n}  topology={topology} \
         ({} banks)  Nb={nb}",
        config.total_banks()
    );
    let _ = writeln!(outp, "  schedule       : {:>12}", policy.to_string());
    let _ = writeln!(outp, "  waves          : {:>12}", out.waves);
    let _ = writeln!(outp, "  batch latency  : {:>12.2} µs", out.latency_us());
    let _ = writeln!(
        outp,
        "  sequential     : {:>12.2} µs ({jobs_n} jobs, one bank)",
        sequential_ns / 1000.0
    );
    let _ = writeln!(
        outp,
        "  speedup        : {:>11.2}x",
        sequential_ns / out.latency_ns
    );
    let _ = writeln!(outp, "  energy         : {:>12.2} nJ", out.energy_nj);
    let _ = writeln!(outp, "  bus slots      : {:>12}", out.bus_slots);
    if out.per_channel_bus_slots.len() > 1 {
        let per_channel = out
            .per_channel_bus_slots
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" / ");
        let _ = writeln!(outp, "  per channel    : {per_channel:>12}");
    }
    let _ = writeln!(outp, "  rank ACTs      : {:>12}", out.rank_acts);
    let _ = writeln!(
        outp,
        "  throughput     : {:>12.0} jobs/s",
        out.throughput_jobs_per_s()
    );
    let _ = writeln!(outp, "  per-bank       :       jobs   busy (µs)     nJ");
    for (bank, u) in out.banks.iter().enumerate() {
        let _ = writeln!(
            outp,
            "    bank {bank:>3}     : {:>10} {:>11.2} {:>6.1}",
            u.jobs,
            u.busy_ns / 1000.0,
            u.energy_nj
        );
    }
    for sr in &out.splits {
        let _ = writeln!(
            outp,
            "  split job {:>4} : {}x{} sub-jobs, column stage {:.2} µs, \
             done {:.2} µs",
            sr.job,
            sr.rows,
            sr.cols,
            sr.column_stage_ns / 1000.0,
            sr.latency_ns / 1000.0
        );
    }
    let _ = writeln!(
        outp,
        "  verification   : OK (job 0 matches the CPU golden NTT)"
    );
    Ok(outp)
}

/// `batch --backend <name>`: registers the named backend on a
/// [`ntt_bus::BackendBus`], prices every job through the bus's cost
/// metadata, runs the batch via address-range dispatch, and verifies
/// job 0 against the golden CPU model.
fn batch_on_backend(
    name: &str,
    jobs: &[ntt_pim::engine::batch::NttJob],
    config: PimConfig,
    policy: ntt_pim::engine::batch::SchedulePolicy,
    lengths: &[usize],
) -> Result<String, CliError> {
    use ntt_bus::{BackendBus, BackendSpec};
    use ntt_pim::engine::{CpuNttEngine, NttEngine};

    let mut spec = BackendSpec::parse(name).map_err(CliError::usage)?;
    if matches!(spec, BackendSpec::Pim(_)) {
        // The PIM slot uses the CLI's --channels/--ranks/--banks shape.
        spec = BackendSpec::Pim(config);
    }
    let backend = spec
        .build(policy, None)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    let mut bus = BackendBus::new();
    let handle = bus.register(backend);
    // Cost metadata first: the per-job quotes a router would sum.
    let mut predicted_ns = 0.0;
    for job in jobs {
        predicted_ns += bus
            .quote_ns(handle, job)
            .map_err(|e| CliError::runtime(e.to_string()))?;
    }
    let aperture = bus.range(handle);
    let out = bus
        .dispatch(aperture.base, jobs)
        .map_err(|e| CliError::runtime(e.to_string()))?;

    let mut golden = CpuNttEngine::golden();
    let mut expect = jobs[0].coeffs.clone();
    golden
        .forward(&mut expect, jobs[0].q)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    if out.spectra[0] != expect {
        return Err(CliError::runtime("batch verification FAILED".to_string()));
    }

    let lengths_str = lengths
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let window = bus.window(handle);
    let mut outp = String::new();
    let _ = writeln!(
        outp,
        "batched NTTs  lengths={lengths_str}  jobs={}  backend={} ({} kind, {} lanes)",
        jobs.len(),
        bus.label(handle),
        bus.kind(handle),
        window.lanes
    );
    let _ = writeln!(
        outp,
        "  aperture       : {:#x}..{:#x}",
        aperture.base,
        aperture.base + aperture.len
    );
    let _ = writeln!(outp, "  window         : {window}");
    let _ = writeln!(
        outp,
        "  batch latency  : {:>12.2} µs",
        out.latency_ns / 1000.0
    );
    let _ = writeln!(
        outp,
        "  predicted      : {:>12.2} µs (summed per-job cost quotes)",
        predicted_ns / 1000.0
    );
    let _ = writeln!(outp, "  energy         : {:>12.2} nJ", out.energy_nj);
    let _ = writeln!(
        outp,
        "  source         : {:>12}",
        format!("{:?}", out.source)
    );
    let _ = writeln!(
        outp,
        "  verification   : OK (job 0 matches the CPU golden NTT)"
    );
    Ok(outp)
}

/// Nearest-rank percentile of an ascending-sorted ns sample, in µs
/// (the shared [`ntt_service::percentile`], unit-converted).
fn percentile_us(sorted_ns: &[f64], p: usize) -> f64 {
    ntt_service::percentile(sorted_ns, p) / 1000.0
}

fn serve(args: &ParsedArgs) -> Result<String, CliError> {
    use ntt_pim::engine::batch::{NttJob, SchedulePolicy};
    use ntt_service::{NttService, ServiceConfig, ServiceError};
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    let smoke = args.has_flag("smoke");
    let tenants: usize = args.get_or("tenants", if smoke { 4 } else { 8 })?;
    let requests: usize = args.get_or("requests", if smoke { 16 } else { 64 })?;
    if tenants == 0 || requests == 0 {
        return Err(CliError::usage("--tenants and --requests must be >= 1"));
    }
    let max_wait_us: u64 = args.get_or("max-wait-us", 500)?;
    let queue_depth: usize = args.get_or("queue-depth", 256)?;
    let tenant_inflight: usize = args.get_or("tenant-inflight", 0)?;
    let policy: SchedulePolicy = args.get_or("schedule", SchedulePolicy::Lpt)?;
    let lengths: Vec<usize> = args.get_list_or(
        "lengths",
        if smoke {
            vec![256, 512]
        } else {
            vec![256, 1024, 2048, 4096]
        },
    )?;
    if lengths.is_empty() {
        return Err(CliError::usage("--lengths must name at least one length"));
    }
    let nb: usize = args.get_or("nb", 2)?;
    let topology = Topology::new(
        args.get_or("channels", 2)?,
        args.get_or("ranks", 2)?,
        args.get_or("banks", 4)?,
    );
    let pim = PimConfig::hbm2e(nb)
        .with_topology(topology)
        .with_refresh(args.has_flag("refresh"));
    pim.validate()?;
    let devices: usize = args.get_or("devices", 1)?;
    if devices == 0 {
        return Err(CliError::usage("--devices must be >= 1"));
    }
    let steal_threshold_us: u64 = args.get_or("steal-threshold-us", 0)?;
    // --backends: a mixed fleet (overrides --devices); PIM slots take
    // the serve topology.
    let backend_specs: Vec<ntt_service::BackendSpec> = match args.options.get("backends") {
        Some(list) => ntt_service::BackendSpec::parse_list(list)
            .map_err(CliError::usage)?
            .into_iter()
            .map(|spec| match spec {
                ntt_service::BackendSpec::Pim(_) => ntt_service::BackendSpec::Pim(pim),
                other => other,
            })
            .collect(),
        None => Vec::new(),
    };

    // One pre-generated job per request (mixed lengths, the RNS/FHE
    // traffic shape); Dilithium's modulus supports every default length.
    let jobs: Vec<NttJob> = (0..requests)
        .map(|j| {
            let n = lengths[j % lengths.len()];
            let q = modulus_for(args, n)?;
            Ok(NttJob::new(
                (0..n as u64)
                    .map(|i| (i.wrapping_mul(2654435761) ^ (j as u64) << 32) % q as u64)
                    .collect(),
                q as u64,
            ))
        })
        .collect::<Result<_, CliError>>()?;

    let mut service_config = ServiceConfig::new(pim)
        .with_policy(policy)
        .with_steal_threshold(Duration::from_micros(steal_threshold_us))
        .with_max_wait(Duration::from_micros(max_wait_us))
        .with_queue_depth(queue_depth)
        .with_tenant_inflight(tenant_inflight)
        .with_verify_golden(smoke);
    service_config = if backend_specs.is_empty() {
        service_config.with_device_count(devices)
    } else {
        service_config.with_backends(backend_specs.clone())
    };
    let service =
        NttService::start(service_config).map_err(|e| CliError::runtime(e.to_string()))?;
    let max_batch = service.max_batch();

    // Closed-loop load: each tenant thread walks its share of the job
    // list (submit → wait → next), retrying briefly on Busy.
    let wall_latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(requests));
    let sim_latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(requests));
    let busy_retries = Mutex::new(0u64);
    let t0 = Instant::now();
    std::thread::scope(|scope| -> Result<(), CliError> {
        let mut workers = Vec::new();
        for t in 0..tenants {
            let client = service.client();
            let jobs = &jobs;
            let (wall_latencies, sim_latencies, busy_retries) =
                (&wall_latencies, &sim_latencies, &busy_retries);
            workers.push(scope.spawn(move || -> Result<(), CliError> {
                let tenant = format!("tenant-{t}");
                for job in jobs.iter().skip(t).step_by(tenants) {
                    let ticket = loop {
                        match client.submit(tenant.clone(), job.clone()) {
                            Ok(ticket) => break ticket,
                            Err(ServiceError::Busy { .. } | ServiceError::TenantBusy { .. }) => {
                                *busy_retries.lock().unwrap() += 1;
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => return Err(CliError::runtime(e.to_string())),
                        }
                    };
                    let response = ticket
                        .wait()
                        .map_err(|e| CliError::runtime(e.to_string()))?;
                    wall_latencies
                        .lock()
                        .unwrap()
                        .push(response.wall.as_nanos() as f64);
                    sim_latencies.lock().unwrap().push(response.sim_latency_ns);
                }
                Ok(())
            }));
        }
        for worker in workers {
            worker.join().expect("tenant thread panicked")?;
        }
        Ok(())
    })?;
    let elapsed = t0.elapsed();
    let stats = service.shutdown();

    let mut wall = wall_latencies.into_inner().unwrap();
    wall.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mut sim = sim_latencies.into_inner().unwrap();
    sim.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let lengths_str = lengths
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serving layer  lengths={lengths_str}  requests={requests}  tenants={tenants}  \
         topology={topology} ({} lanes)  max_batch={max_batch}  max_wait={max_wait_us} µs",
        topology.total_banks(),
    );
    let _ = writeln!(out, "  completed       : {:>12}", stats.completed);
    let _ = writeln!(
        out,
        "  wall latency    : {:>9.2} µs p50 / {:.2} µs p99",
        percentile_us(&wall, 50),
        percentile_us(&wall, 99)
    );
    let _ = writeln!(
        out,
        "  sim latency     : {:>9.2} µs p50 / {:.2} µs p99",
        percentile_us(&sim, 50),
        percentile_us(&sim, 99)
    );
    let _ = writeln!(
        out,
        "  wall throughput : {:>12.0} req/s",
        stats.completed as f64 / elapsed.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "  sim throughput  : {:>12.0} jobs/s (device time {:.2} µs over {} batches)",
        stats.sim_jobs_per_s(),
        stats.sim_busy_ns / 1000.0,
        stats.batches
    );
    let _ = writeln!(
        out,
        "  mean occupancy  : {:>12.2} jobs/batch (max {})",
        stats.mean_occupancy(),
        stats.max_batch_seen
    );
    let _ = writeln!(
        out,
        "  rejection rate  : {:>11.1}% ({} busy rejections, {} retries)",
        stats.rejection_rate() * 100.0,
        stats.rejected_busy + stats.rejected_tenant,
        busy_retries.into_inner().unwrap()
    );
    let _ = writeln!(
        out,
        "  plan cache      : {:>6} hits / {} misses / {} entries",
        stats.plan_cache.hits, stats.plan_cache.misses, stats.plan_cache.entries
    );
    let _ = writeln!(
        out,
        "  host kernel     : {:>12} (lane width {})",
        ntt_ref::lanes::kernel_label(),
        ntt_ref::lanes::LANE_WIDTH
    );
    if devices > 1 || !backend_specs.is_empty() {
        let _ = writeln!(
            out,
            "  fleet           : {:>12} devices, makespan {:.2} µs, {:.0} jobs/s \
             (steal threshold {steal_threshold_us} µs)",
            stats.devices.len(),
            stats.fleet_makespan_ns() / 1000.0,
            stats.fleet_jobs_per_s()
        );
        for d in &stats.devices {
            let _ = writeln!(
                out,
                "    device {:>2} [{} {}] : {:>5} lanes  {:>4} batches  {:>5} jobs  \
                 occupancy {:>5.2}  utilization {:>4.2}  busy {:>9.2} µs  \
                 steals {:>3}  {}",
                d.device,
                d.backend,
                d.topology,
                d.lanes,
                d.batches,
                d.jobs,
                d.occupancy(),
                d.utilization(),
                d.sim_busy_ns / 1000.0,
                d.steals,
                if d.healthy { "healthy" } else { "RETIRED" }
            );
        }
    }
    if stats.completed != requests as u64 {
        return Err(CliError::runtime(format!(
            "serve lost requests: {}/{requests} completed",
            stats.completed
        )));
    }
    if smoke {
        if stats.verify_failures != 0 {
            return Err(CliError::runtime(format!(
                "serve smoke FAILED: {} golden verification failures",
                stats.verify_failures
            )));
        }
        let _ = writeln!(
            out,
            "  verification    : OK (every response matches the golden CPU NTT; \
             {} of {} verifications rode the lane-batched kernel)",
            stats.verify_lane_jobs, stats.completed
        );
        let _ = writeln!(out, "serve smoke OK");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(s: &str) -> Result<String, CliError> {
        dispatch(&ParsedArgs::parse(s.split_whitespace().map(String::from)).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_line("help").unwrap().contains("USAGE"));
    }

    #[test]
    fn run_reports_metrics() {
        let out = run_line("run --n 256 --nb 2").unwrap();
        assert!(out.contains("latency"));
        assert!(out.contains("N=256"));
    }

    #[test]
    fn sweep_emits_table() {
        let out = run_line("sweep --nb 2,4 --lengths 256,512").unwrap();
        assert!(out.contains("Nb=2"));
        assert!(out.lines().count() >= 3);
    }

    #[test]
    fn trace_roundtrips_through_parser() {
        let out = run_line("trace --n 64 --nb 2").unwrap();
        let parsed = dram_sim::trace::from_text(&out, 833).unwrap();
        assert!(parsed.len() > 10);
    }

    #[test]
    fn verify_passes_and_polymul_passes() {
        assert!(run_line("verify --n 256 --nb 4").unwrap().contains("OK"));
        assert!(run_line("polymul --n 256 --nb 4").unwrap().contains("OK"));
    }

    #[test]
    fn batch_reports_merged_metrics_and_verifies() {
        let out = run_line("batch --n 256 --jobs 6 --banks 4 --nb 2").unwrap();
        assert!(
            out.contains("waves          :            2"),
            "6 jobs / 4 banks: {out}"
        );
        assert!(out.contains("speedup"));
        assert!(out.contains("bank   3"));
        assert!(out.contains("verification   : OK"));
    }

    #[test]
    fn batch_rejects_degenerate_requests_without_panicking() {
        assert!(run_line("batch --n 256 --jobs 0 --banks 2").is_err());
        assert!(run_line("batch --n 256 --jobs 2 --banks 0").is_err());
        assert!(run_line("batch --n 1000 --jobs 2 --banks 2").is_err());
        assert!(run_line("batch --n 256 --jobs 2 --banks 2 --schedule frob").is_err());
    }

    #[test]
    fn batch_supports_both_scheduling_policies() {
        let lpt = run_line("batch --jobs 4 --banks 2 --lengths 64,256 --schedule lpt").unwrap();
        assert!(lpt.contains("schedule       :          lpt"), "{lpt}");
        assert!(lpt.contains("verification   : OK"));
        let rr =
            run_line("batch --jobs 4 --banks 2 --lengths 64,256 --schedule round-robin").unwrap();
        assert!(rr.contains("schedule       :  round-robin"), "{rr}");
        assert!(rr.contains("verification   : OK"));
    }

    #[test]
    fn batch_defaults_to_lpt_and_cycles_mixed_lengths() {
        let out = run_line("batch --jobs 4 --banks 4 --lengths 64,128").unwrap();
        assert!(out.contains("lengths=64,128"), "{out}");
        assert!(out.contains("schedule       :          lpt"), "{out}");
    }

    #[test]
    fn batch_split_reports_stages_and_verifies() {
        // Job 0 (the split, verified against the golden CPU forward)
        // co-packs with two ordinary N=256 jobs.
        let out = run_line("batch --n 1024 --jobs 3 --banks 4 --lengths 256 --split").unwrap();
        assert!(out.contains("split job    0 : 32x32 sub-jobs"), "{out}");
        assert!(out.contains("column stage"), "{out}");
        assert!(out.contains("verification   : OK"), "{out}");
    }

    #[test]
    fn batch_split_requires_lpt_and_a_splittable_length() {
        let e = run_line("batch --n 1024 --jobs 1 --banks 4 --split --schedule round-robin")
            .unwrap_err();
        assert!(e.to_string().contains("lpt"), "{e}");
        assert!(run_line("batch --n 8 --jobs 1 --banks 4 --split").is_err());
    }

    #[test]
    fn batch_accepts_a_sharded_topology() {
        let out =
            run_line("batch --n 256 --jobs 8 --channels 2 --ranks 2 --banks 2 --nb 2").unwrap();
        assert!(out.contains("topology=2x2x2 (8 banks)"), "{out}");
        assert!(out.contains("per channel"), "{out}");
        assert!(out.contains("bank   7"), "{out}");
        assert!(out.contains("verification   : OK"));
        // Degenerate levels are rejected up front.
        assert!(run_line("batch --n 256 --jobs 2 --channels 0 --banks 2").is_err());
    }

    #[test]
    fn run_accepts_topology_flags_without_changing_results() {
        // Single-request commands only use bank 0; extra channels/ranks
        // must parse and not disturb the report.
        let out = run_line("run --n 256 --nb 2 --channels 2 --ranks 2 --banks 2").unwrap();
        assert!(out.contains("N=256"));
    }

    #[test]
    fn serve_smoke_reports_and_verifies() {
        let out = run_line(
            "serve --smoke --tenants 2 --requests 8 --channels 1 --ranks 1 --banks 4 \
             --lengths 64,256 --max-wait-us 200",
        )
        .unwrap();
        assert!(out.contains("serve smoke OK"), "{out}");
        assert!(out.contains("verification    : OK"), "{out}");
        assert!(out.contains("completed       :            8"), "{out}");
        assert!(out.contains("mean occupancy"), "{out}");
        assert!(out.contains("plan cache"), "{out}");
        assert!(
            out.contains(ntt_ref::lanes::kernel_label())
                && out.contains(&format!("lane width {}", ntt_ref::lanes::LANE_WIDTH)),
            "serve must name the active host kernel and lane width: {out}"
        );
        assert!(
            out.contains("rode the lane-batched kernel"),
            "serve must report the lane-verified count: {out}"
        );
    }

    #[test]
    fn serve_rejects_degenerate_requests() {
        assert!(run_line("serve --tenants 0 --requests 4").is_err());
        assert!(run_line("serve --tenants 2 --requests 0").is_err());
        assert!(run_line("serve --smoke --lengths 100 --requests 2 --tenants 1").is_err());
        assert!(run_line("serve --devices 0 --requests 4").is_err());
    }

    #[test]
    fn serve_fleet_appends_per_device_report() {
        let out = run_line(
            "serve --smoke --devices 4 --tenants 4 --requests 32 \
             --channels 1 --ranks 1 --banks 4 --lengths 64,256 --max-wait-us 200",
        )
        .unwrap();
        assert!(out.contains("serve smoke OK"), "{out}");
        assert!(out.contains("fleet           :"), "{out}");
        for d in 0..4 {
            assert!(
                out.contains(&format!("device  {d} [pim 1x1x4]")),
                "missing device {d} row: {out}"
            );
        }
        assert!(out.contains("healthy"), "{out}");
        assert!(!out.contains("RETIRED"), "{out}");
    }

    #[test]
    fn serve_mixed_backends_reports_labeled_fleet() {
        let out = run_line(
            "serve --smoke --backends pim:1,cpu-lanes:1 --tenants 2 --requests 16 \
             --channels 1 --ranks 1 --banks 4 --lengths 64,256 --max-wait-us 200",
        )
        .unwrap();
        assert!(out.contains("serve smoke OK"), "{out}");
        assert!(out.contains("device  0 [pim 1x1x4]"), "{out}");
        assert!(out.contains("device  1 [cpu-lanes 1x1x8]"), "{out}");
        // Malformed fleet descriptions are usage errors.
        assert!(run_line("serve --backends frob --requests 2 --tenants 1").is_err());
        assert!(run_line("serve --backends pim:0 --requests 2 --tenants 1").is_err());
    }

    #[test]
    fn batch_backend_runs_through_the_bus() {
        let out = run_line("batch --n 256 --jobs 6 --backend cpu-lanes").unwrap();
        assert!(out.contains("backend=cpu-lanes"), "{out}");
        assert!(out.contains("aperture"), "{out}");
        assert!(out.contains("verification   : OK"), "{out}");
        let out = run_line("batch --n 1024 --jobs 2 --q 12289 --backend bp-ntt").unwrap();
        assert!(out.contains("backend=bp-ntt"), "{out}");
        assert!(out.contains("Published"), "{out}");
        let out = run_line("batch --n 256 --jobs 4 --banks 4 --backend pim").unwrap();
        assert!(out.contains("backend=pim"), "{out}");
        // Outside the window: typed error, not a panic; unknown names
        // are usage errors.
        assert!(run_line("batch --n 8192 --jobs 1 --backend bp-ntt").is_err());
        assert!(run_line("batch --n 256 --jobs 1 --backend frob").is_err());
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let e = run_line("frobnicate").unwrap_err();
        assert_eq!(e.exit_code, 2);
    }

    #[test]
    fn explicit_modulus_respected() {
        let out = run_line("run --n 256 --nb 2 --q 12289").unwrap();
        assert!(out.contains("q=12289"));
    }

    #[test]
    fn refresh_flag_adds_refreshes() {
        let out = run_line("run --n 8192 --nb 2 --refresh").unwrap();
        let line = out
            .lines()
            .find(|l| l.contains("refreshes"))
            .expect("refresh line");
        let count: u64 = line.split(':').nth(1).unwrap().trim().parse().unwrap();
        assert!(count > 0);
    }
}
