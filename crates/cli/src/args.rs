//! Minimal dependency-free argument parsing.
//!
//! Supports `--flag`, `--key value`, and `--key=value` forms plus
//! positional subcommands — enough for this tool without pulling a parser
//! crate into the workspace (DESIGN.md limits dependencies).

use crate::CliError;
use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus its options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` / `--key=value` options, keyed without the dashes.
    pub options: BTreeMap<String, String>,
    /// Bare `--flag`s present.
    pub flags: Vec<String>,
}

impl ParsedArgs {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// [`CliError::usage`] on a missing subcommand, stray positionals, or
    /// a dangling `--key` without value.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, CliError> {
        let mut it = raw.into_iter().peekable();
        let command = it
            .next()
            .ok_or_else(|| CliError::usage("missing subcommand; try `ntt-pim help`"))?;
        if command.starts_with('-') {
            return Err(CliError::usage(format!(
                "expected a subcommand, got option {command}"
            )));
        }
        let mut options = BTreeMap::new();
        let mut flags = Vec::new();
        while let Some(tok) = it.next() {
            let Some(stripped) = tok.strip_prefix("--") else {
                return Err(CliError::usage(format!("unexpected positional {tok}")));
            };
            if let Some((k, v)) = stripped.split_once('=') {
                options.insert(k.to_string(), v.to_string());
            } else if it.peek().is_some_and(|nxt| !nxt.starts_with("--")) {
                options.insert(stripped.to_string(), it.next().expect("peeked"));
            } else {
                flags.push(stripped.to_string());
            }
        }
        Ok(Self {
            command,
            options,
            flags,
        })
    }

    /// Typed option lookup with default.
    ///
    /// # Errors
    ///
    /// [`CliError::usage`] when present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("bad value for --{key}: {v}"))),
        }
    }

    /// A comma-separated list option (e.g. `--nb 1,2,4`).
    ///
    /// # Errors
    ///
    /// [`CliError::usage`] when any element is unparsable.
    pub fn get_list_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: Vec<T>,
    ) -> Result<Vec<T>, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .split(',')
                .map(|part| {
                    part.trim()
                        .parse()
                        .map_err(|_| CliError::usage(format!("bad value in --{key}: {part}")))
                })
                .collect(),
        }
    }

    /// Whether a bare flag is present.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<ParsedArgs, CliError> {
        ParsedArgs::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_subcommand_options_and_flags() {
        let a = parse("run --n 1024 --nb=4 --refresh").unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.options.get("n").unwrap(), "1024");
        assert_eq!(a.options.get("nb").unwrap(), "4");
        assert!(a.has_flag("refresh"));
        assert_eq!(a.get_or("n", 0usize).unwrap(), 1024);
        assert_eq!(a.get_or("missing", 7u32).unwrap(), 7);
    }

    #[test]
    fn parses_lists() {
        let a = parse("sweep --nb 1,2,4,6").unwrap();
        assert_eq!(a.get_list_or("nb", vec![0usize]).unwrap(), vec![1, 2, 4, 6]);
        assert_eq!(a.get_list_or("lengths", vec![256usize]).unwrap(), vec![256]);
    }

    #[test]
    fn usage_errors() {
        assert!(parse("").is_err());
        assert!(parse("--n 4").is_err());
        assert!(parse("run stray").is_err());
        let a = parse("run --n x").unwrap();
        assert!(a.get_or("n", 0usize).is_err());
    }

    #[test]
    fn negative_like_values_need_equals() {
        // `--key value` treats a following `--x` as a flag boundary, so
        // values beginning with dashes use the = form.
        let a = parse("run --label=--weird").unwrap();
        assert_eq!(a.options.get("label").unwrap(), "--weird");
    }
}
