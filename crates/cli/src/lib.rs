//! Library backing the `ntt-pim` command-line tool.
//!
//! All functionality lives here (the binary is a thin `main`) so the
//! argument parser and every subcommand are unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

/// Top-level CLI error: message plus suggested exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code (2 = usage, 1 = runtime failure).
    pub exit_code: i32,
}

impl CliError {
    /// A usage error (exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            exit_code: 2,
        }
    }

    /// A runtime error (exit code 1).
    pub fn runtime(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            exit_code: 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<ntt_pim_core::PimError> for CliError {
    fn from(e: ntt_pim_core::PimError) -> Self {
        CliError::runtime(e.to_string())
    }
}

impl From<modmath::Error> for CliError {
    fn from(e: modmath::Error) -> Self {
        CliError::runtime(e.to_string())
    }
}
