//! Split-vs-golden parity for the large-transform datapath: a
//! [`JobKind::SplitLarge`] job — column NTTs fanned across banks, the
//! twiddle+transpose stage, row NTTs fanned back — must be
//! **bit-identical** to the golden CPU forward NTT of the whole length,
//! for every length, modulus, and topology drawn.
//!
//! A note on the modulus grid: the issue's headline lengths are
//! N ∈ {8192, 16384, 32768}. Dilithium's q = 8380417 has
//! q−1 = 2¹³·1023, so `2N | q−1` holds only up to N = 4096 — no
//! 2N-th root of unity exists beyond that, for *any* implementation.
//! The large lengths therefore run on q = 2013265921 (= 15·2²⁷+1,
//! the NTT-friendly 31-bit prime, window N ≤ 2²⁶), and q = 8380417 is
//! exercised at the top of its own window (N = 4096) plus a negative
//! test proving the executor rejects it beyond the window instead of
//! producing garbage.

use ntt_pim::core::config::{PimConfig, Topology};
use ntt_pim::engine::batch::{BatchExecutor, NttJob};
use ntt_pim::engine::{CpuNttEngine, NttEngine};
use proptest::prelude::*;

/// 15·2²⁷ + 1: covers every headline length with room to spare.
const Q_LARGE: u64 = 2_013_265_921;
/// Dilithium's modulus: window capped at N = 4096 by 2N | q−1.
const Q_DILITHIUM: u64 = 8_380_417;

fn poly(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) % q
        })
        .collect()
}

fn executor(topology: (u32, u32, u32)) -> BatchExecutor {
    let config =
        PimConfig::hbm2e(2).with_topology(Topology::new(topology.0, topology.1, topology.2));
    config.validate().expect("valid config");
    BatchExecutor::new(config).expect("executor")
}

fn golden_forward(coeffs: &[u64], q: u64) -> Vec<u64> {
    let mut expect = coeffs.to_vec();
    CpuNttEngine::golden()
        .forward(&mut expect, q)
        .expect("golden forward");
    expect
}

/// One split job through the device, compared bit-for-bit.
fn check_split(n: usize, q: u64, topology: (u32, u32, u32), seed: u64) {
    let job = NttJob::split_large(poly(n, q, seed), q);
    let expect = golden_forward(&job.coeffs, q);
    let out = executor(topology).run(std::slice::from_ref(&job)).unwrap();
    assert_eq!(out.spectra[0], expect, "N={n} q={q} topology={topology:?}");
    assert_eq!(out.splits.len(), 1);
    assert_eq!(out.splits[0].rows * out.splits[0].cols, n);
}

proptest! {
    // Each case simulates a full large transform on the device model;
    // a handful of cases per run keeps the suite inside tier-1 budget
    // while the deterministic stream still walks the grid across runs.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn split_large_is_bit_identical_to_golden(
        n in prop::sample::select(vec![8192usize, 16384, 32768]),
        topology in prop::sample::select(vec![
            (1u32, 1u32, 4u32),
            (2, 2, 2),
            (4, 2, 2),
            (2, 1, 8),
        ]),
        seed in 1u64..1_000_000,
    ) {
        check_split(n, Q_LARGE, topology, seed);
    }

    #[test]
    fn split_co_packs_with_mixed_traffic_bit_identically(
        small_lengths in prop::collection::vec(
            prop::sample::select(vec![256usize, 1024, 2048]),
            2..6,
        ),
        topology in prop::sample::select(vec![
            (1u32, 1u32, 4u32),
            (2, 2, 2),
            (2, 1, 8),
        ]),
        seed in 1u64..1_000_000,
    ) {
        // One large split job rides with ordinary Dilithium-modulus
        // jobs (mixed moduli in one batch, the RNS traffic shape).
        let mut jobs = vec![NttJob::split_large(poly(8192, Q_LARGE, seed), Q_LARGE)];
        for (i, &n) in small_lengths.iter().enumerate() {
            jobs.push(NttJob::new(poly(n, Q_DILITHIUM, seed ^ (i as u64 + 1)), Q_DILITHIUM));
        }
        let out = executor(topology).run(&jobs).unwrap();
        for (i, job) in jobs.iter().enumerate() {
            prop_assert_eq!(
                &out.spectra[i],
                &golden_forward(&job.coeffs, job.q),
                "job {} (N={})", i, job.n()
            );
        }
        // Report consistency: the batch drains when its last job does,
        // and the split's stages are ordered (columns before the
        // barrier, rows after, completion last).
        let slowest = out.job_latency_ns.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!((out.latency_ns - slowest).abs() < 1e-6);
        prop_assert!(out.splits[0].column_stage_ns < out.splits[0].latency_ns);
        prop_assert!((out.job_latency_ns[0] - out.splits[0].latency_ns).abs() < 1e-6);
    }
}

#[test]
fn small_jobs_are_never_starved_by_a_split() {
    // Row sub-jobs sort to the back of every bank queue, so an ordinary
    // job sharing a bank with the split's row stage always drains first.
    // With 64 row sub-jobs LPT-spread over 4 equal banks, every bank
    // hosts rows — each small job must complete strictly before the
    // split does.
    let mut jobs = vec![NttJob::split_large(poly(8192, Q_LARGE, 42), Q_LARGE)];
    for i in 0..4u64 {
        jobs.push(NttJob::new(poly(256, Q_DILITHIUM, i + 1), Q_DILITHIUM));
    }
    let out = executor((1, 1, 4)).run(&jobs).unwrap();
    for (i, job) in jobs.iter().enumerate() {
        assert_eq!(
            out.spectra[i],
            golden_forward(&job.coeffs, job.q),
            "job {i}"
        );
    }
    let split_done = out.splits[0].latency_ns;
    for (i, lat) in out.job_latency_ns.iter().enumerate().skip(1) {
        assert!(
            *lat < split_done,
            "ordinary job {i} ({lat} ns) starved past the split ({split_done} ns)"
        );
    }
}

#[test]
fn dilithium_modulus_splits_inside_its_window() {
    // The top of q = 8380417's window: N = 4096 is the largest length
    // with a 2N-th root of unity (q−1 = 2¹³·1023).
    for topology in [(1u32, 1u32, 4u32), (2, 2, 2), (4, 2, 2)] {
        check_split(4096, Q_DILITHIUM, topology, 0xD1C3);
    }
}

#[test]
fn dilithium_modulus_is_rejected_beyond_its_window() {
    // N = 8192 with q = 8380417 is mathematically impossible (no
    // 16384-th root of unity mod q); the executor must refuse it with
    // a typed shape error, never compute a wrong spectrum.
    let job = NttJob::split_large(poly(8192, Q_DILITHIUM, 7), Q_DILITHIUM);
    let err = executor((2, 2, 2))
        .run(std::slice::from_ref(&job))
        .unwrap_err();
    assert!(
        err.to_string().contains("2N-th root"),
        "error must name the 2N | q-1 window: {err}"
    );
}
