//! Cross-layer tests of the cost-model-driven batch scheduler: the
//! acceptance scenario (LPT + async drain strictly beats round-robin
//! waves on a skewed mixed-size batch) and property tests over random
//! mixed-(N, q, kind) batches — every job assigned exactly once, bank
//! loads within the greedy LPT bound, and results bit-identical to the
//! CPU golden engine (which runs the Shoup-lazy kernel for every
//! modulus drawn here — all are inside the `q < 2⁶²` lazy bound).

use ntt_pim::core::config::PimConfig;
use ntt_pim::engine::batch::{BatchExecutor, JobKind, NttJob, SchedulePolicy};
use ntt_pim::engine::{CpuNttEngine, NttEngine};
use proptest::prelude::*;

fn poly(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) % q
        })
        .collect()
}

/// Golden-model result of one job.
fn golden(job: &NttJob) -> Vec<u64> {
    let mut cpu = CpuNttEngine::golden();
    let mut data = job.coeffs.clone();
    match &job.kind {
        // A split large job is bit-identical to the whole forward NTT.
        JobKind::Forward | JobKind::SplitLarge => cpu.forward(&mut data, job.q).unwrap(),
        JobKind::Inverse => cpu.inverse(&mut data, job.q).unwrap(),
        JobKind::NegacyclicPolymul { rhs } => {
            cpu.negacyclic_polymul(&mut data, rhs, job.q).unwrap()
        }
    };
    data
}

/// The acceptance scenario: 12 jobs with skewed sizes (N ∈ {256, 4096})
/// on 4 banks. Round-robin waves pay the slowest job in every wave; the
/// LPT + async-drain schedule must report strictly lower latency while
/// producing bit-identical spectra.
#[test]
fn lpt_async_drain_beats_round_robin_waves_on_skewed_batch() {
    const Q: u64 = 8_380_417; // 2^13 | q-1: covers N = 256 and 4096
    let jobs: Vec<NttJob> = (0..12)
        .map(|j| {
            let n = if j % 2 == 0 { 256 } else { 4096 };
            NttJob::new(poly(n, Q, 900 + j as u64), Q)
        })
        .collect();
    let config = PimConfig::hbm2e(2).with_banks(4);
    let mut rr = BatchExecutor::new(config)
        .unwrap()
        .with_policy(SchedulePolicy::RoundRobin);
    let mut lpt = BatchExecutor::new(config)
        .unwrap()
        .with_policy(SchedulePolicy::Lpt);
    let out_rr = rr.run(&jobs).unwrap();
    let out_lpt = lpt.run(&jobs).unwrap();

    // Functional equivalence across policies and against the golden CPU.
    assert_eq!(out_lpt.spectra, out_rr.spectra);
    for (i, job) in jobs.iter().enumerate() {
        assert_eq!(out_lpt.spectra[i], golden(job), "job {i}");
    }

    // The headline claim: strictly lower simulated batch latency.
    assert!(
        out_lpt.latency_ns < out_rr.latency_ns,
        "LPT {:.0} ns must beat round-robin {:.0} ns on the skewed batch",
        out_lpt.latency_ns,
        out_rr.latency_ns
    );
    // And not marginally: round-robin runs 3 waves, each dominated by an
    // N=4096 job; LPT packs the six big jobs two-deep at worst.
    assert!(
        out_lpt.latency_ns < 0.9 * out_rr.latency_ns,
        "expected a clear win, got {:.2}x",
        out_rr.latency_ns / out_lpt.latency_ns
    );
    assert_eq!(out_rr.waves, 3, "12 jobs round-robin over 4 banks");
}

/// Mixed job kinds flow through the batch path and the per-job latency
/// accounting covers every job.
#[test]
fn mixed_kind_batch_accounts_every_job() {
    const Q: u64 = 12289;
    let jobs = vec![
        NttJob::forward(poly(256, Q, 1), Q),
        NttJob::inverse(poly(1024, Q, 2), Q),
        NttJob::negacyclic_polymul(poly(256, Q, 3), poly(256, Q, 4), Q),
        NttJob::forward(poly(1024, Q, 5), Q),
    ];
    let mut exec = BatchExecutor::new(PimConfig::hbm2e(4).with_banks(3)).unwrap();
    let out = exec.run(&jobs).unwrap();
    for (i, job) in jobs.iter().enumerate() {
        assert_eq!(out.spectra[i], golden(job), "job {i}");
    }
    assert!(out.job_latency_ns.iter().all(|&l| l > 0.0));
    let mut assigned: Vec<usize> = out.assignment.iter().flatten().copied().collect();
    assigned.sort_unstable();
    assert_eq!(assigned, vec![0, 1, 2, 3]);
}

/// Job pools compatible with each transform length (every q is prime
/// with 2N | q-1 and fits the 32-bit datapath).
fn moduli_for(n: usize) -> Vec<u64> {
    match n {
        64 | 128 | 256 => vec![12289, 7681, 8_380_417],
        1024 => vec![12289, 8_380_417],
        _ => vec![2_013_265_921],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn scheduler_properties_hold_on_random_mixed_batches(
        banks in prop::sample::select(vec![2usize, 3, 4]),
        specs in prop::collection::vec(
            (
                prop::sample::select(vec![64usize, 128, 256, 1024]),
                0u64..3,   // kind selector
                1u64..1_000_000,
            ),
            1..7,
        ),
    ) {
        let jobs: Vec<NttJob> = specs
            .iter()
            .enumerate()
            .map(|(i, &(n, kind, seed))| {
                let qs = moduli_for(n);
                let q = qs[(seed as usize + i) % qs.len()];
                match kind {
                    0 => NttJob::forward(poly(n, q, seed), q),
                    1 => NttJob::inverse(poly(n, q, seed ^ 0xabc), q),
                    _ => NttJob::negacyclic_polymul(
                        poly(n, q, seed ^ 0x123),
                        poly(n, q, seed ^ 0x456),
                        q,
                    ),
                }
            })
            .collect();
        let mut exec =
            BatchExecutor::new(PimConfig::hbm2e(2).with_banks(banks as u32)).unwrap();

        // --- Assignment properties (plan only, nothing executed) ------
        let plan = exec.plan(&jobs).unwrap();
        let mut assigned: Vec<usize> = plan.queues.iter().flatten().copied().collect();
        assigned.sort_unstable();
        let expect: Vec<usize> = (0..jobs.len()).collect();
        prop_assert_eq!(&assigned, &expect, "every job assigned exactly once");

        // Greedy-LPT bound: the heaviest bank carries at most the mean
        // load plus one maximal job — within one job of optimal.
        let loads: Vec<f64> = plan
            .queues
            .iter()
            .map(|q| q.iter().map(|&j| plan.costs[j]).sum())
            .collect();
        let max_load = loads.iter().cloned().fold(0.0, f64::max);
        let total: f64 = plan.costs.iter().sum();
        let max_cost = plan.costs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(
            max_load <= total / banks as f64 + max_cost + 1e-6,
            "LPT bound violated: max {max_load}, total {total}, banks {banks}"
        );

        // --- Execution: bit-identical to the CPU golden engine --------
        let out = exec.run(&jobs).unwrap();
        for (i, job) in jobs.iter().enumerate() {
            prop_assert_eq!(&out.spectra[i], &golden(job), "job {}", i);
        }
        prop_assert!(out.latency_ns > 0.0);
    }
}
