//! Topology integration tests: sharding the device across channels and
//! ranks changes *timing only* — values stay bit-identical to the
//! single-rank device and the CPU golden model — and adding channels is
//! a strict latency win on the batch workload the sharding exists for.

use ntt_pim::core::config::{PimConfig, Topology};
use ntt_pim::engine::batch::{BatchExecutor, NttJob};
use ntt_pim::engine::{CpuNttEngine, NttEngine};

const Q: u64 = 8_380_417; // 2^13 | q-1: supports every length used here

fn poly(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) % q
        })
        .collect()
}

/// The 64-job mixed-size batch of the scaling story (kept to moderate
/// lengths so the functional simulation stays fast under the test
/// profile; the `scaling` bench bin runs the full-size variant).
fn mixed_batch() -> Vec<NttJob> {
    (0..64)
        .map(|j| {
            let n = [256usize, 512, 1024, 512][j % 4];
            NttJob::new(poly(n, Q, 4000 + j as u64), Q)
        })
        .collect()
}

fn run_on(topology: Topology, jobs: &[NttJob]) -> ntt_pim::engine::batch::BatchOutcome {
    let mut exec = BatchExecutor::new(PimConfig::hbm2e(2).with_topology(topology)).unwrap();
    exec.run(jobs).unwrap()
}

#[test]
fn sharded_device_is_bit_identical_to_single_rank_and_cpu_golden() {
    // Mixed kinds across a 2×2×2 topology vs the flat 8-bank device.
    let a = poly(256, Q, 1);
    let b = poly(256, Q, 2);
    let mut jobs: Vec<NttJob> = (0..6)
        .map(|j| NttJob::new(poly(512, Q, 10 + j), Q))
        .collect();
    jobs.push(NttJob::inverse(poly(256, Q, 20), Q));
    jobs.push(NttJob::negacyclic_polymul(a.clone(), b.clone(), Q));

    let sharded = run_on(Topology::new(2, 2, 2), &jobs);
    let flat = run_on(Topology::single_rank(8), &jobs);
    assert_eq!(
        sharded.spectra, flat.spectra,
        "topology must never change values"
    );

    // And both match the CPU golden engine job by job.
    let mut cpu = CpuNttEngine::golden();
    for (i, job) in jobs.iter().enumerate() {
        let mut expect = job.coeffs.clone();
        match &job.kind {
            ntt_pim::engine::batch::JobKind::Forward
            | ntt_pim::engine::batch::JobKind::SplitLarge => {
                cpu.forward(&mut expect, job.q).unwrap();
            }
            ntt_pim::engine::batch::JobKind::Inverse => {
                cpu.inverse(&mut expect, job.q).unwrap();
            }
            ntt_pim::engine::batch::JobKind::NegacyclicPolymul { rhs } => {
                cpu.negacyclic_polymul(&mut expect, rhs, job.q).unwrap();
            }
        }
        assert_eq!(sharded.spectra[i], expect, "job {i} vs CPU golden");
    }
}

#[test]
fn two_channels_strictly_beat_one_on_the_64_job_batch() {
    let jobs = mixed_batch();
    // Same 16-bank budget, reshaped: one shared bus/rank vs two private
    // buses with two private activation windows each.
    let flat = run_on(Topology::single_rank(16), &jobs);
    let sharded = run_on(Topology::new(2, 2, 4), &jobs);
    assert_eq!(flat.spectra, sharded.spectra, "same values either way");
    assert!(
        sharded.latency_ns < flat.latency_ns,
        "2x2x4 ({:.1} µs) must strictly beat 1x1x16 ({:.1} µs)",
        sharded.latency_ns / 1000.0,
        flat.latency_ns / 1000.0
    );
    // The win comes from splitting contention, not from doing less work.
    assert_eq!(sharded.bus_slots, flat.bus_slots);
    assert_eq!(sharded.rank_acts, flat.rank_acts);
    // Both channels carry real traffic (hierarchical LPT balances them).
    assert_eq!(sharded.per_channel_bus_slots.len(), 2);
    for (ch, &slots) in sharded.per_channel_bus_slots.iter().enumerate() {
        assert!(slots > 0, "channel {ch} idle");
    }
    let imbalance = sharded.per_channel_bus_slots[0].abs_diff(sharded.per_channel_bus_slots[1]);
    assert!(
        (imbalance as f64) < 0.2 * sharded.bus_slots as f64,
        "channel loads should be roughly balanced: {:?}",
        sharded.per_channel_bus_slots
    );
}

#[test]
fn channel_scaling_is_monotone_on_the_64_job_batch() {
    // Scale-out axis: doubling the channel count (8 banks per channel
    // either way) must strictly help the 64-job batch.
    let jobs = mixed_batch();
    let one = run_on(Topology::new(1, 1, 8), &jobs);
    let two = run_on(Topology::new(2, 1, 8), &jobs);
    assert!(
        two.latency_ns < one.latency_ns,
        "2 channels {:.1} µs !< 1 channel {:.1} µs",
        two.latency_ns / 1000.0,
        one.latency_ns / 1000.0
    );
    assert_eq!(one.spectra, two.spectra);
}
