//! Cross-crate integration tests: the full stack from host request to
//! verified memory contents, exercised through the facade crate exactly
//! as a downstream user would.

use ntt_pim::core::config::PimConfig;
use ntt_pim::core::device::{NttDirection, PimDevice, StoredOrder};
use ntt_pim::math::prime::{find_ntt_prime, root_of_unity, NttField};
use ntt_pim::reference::plan::NttPlan;

fn poly(n: usize, q: u32, seed: u64) -> Vec<u32> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % q as u64) as u32
        })
        .collect()
}

#[test]
fn forward_ntt_matches_software_across_sizes_and_moduli() {
    for (n, bits) in [(16usize, 13u32), (256, 17), (1024, 25), (4096, 31)] {
        let q = find_ntt_prime(2 * n as u64, bits).expect("prime exists") as u32;
        let mut dev = PimDevice::new(PimConfig::hbm2e(4)).expect("valid config");
        let x = poly(n, q, n as u64);
        let mut h = dev.load_polynomial_bitrev(0, &x, q).expect("load");
        dev.ntt_in_place(&mut h, NttDirection::Forward)
            .expect("ntt");
        let got = dev.read_polynomial(&h).expect("read");

        // Software reference through the same ω-derivation path.
        let omega = root_of_unity(n as u64, q as u64).expect("root");
        let psi = root_of_unity(2 * n as u64, q as u64).expect("2N root");
        let field = NttField::with_psi(n, q as u64, psi).expect("field");
        assert_eq!(field.root_of_unity(), omega, "derivations agree");
        let plan = NttPlan::new(field);
        let mut expect: Vec<u64> = x.iter().map(|&c| c as u64).collect();
        plan.forward(&mut expect);
        assert!(
            got.iter().zip(&expect).all(|(&g, &e)| g as u64 == e),
            "n={n} q={q}"
        );
    }
}

#[test]
fn every_buffer_count_roundtrips() {
    let n = 512;
    let q = find_ntt_prime(2 * n as u64, 29).unwrap() as u32;
    let x = poly(n, q, 9);
    for nb in [1usize, 2, 3, 4, 6, 8] {
        // Nb=1 is slow but must still be *correct*.
        if nb == 1 && n > 512 {
            continue;
        }
        let mut dev = PimDevice::new(PimConfig::hbm2e(nb)).unwrap();
        let mut h = dev.load_polynomial_bitrev(0, &x, q).unwrap();
        dev.ntt_in_place(&mut h, NttDirection::Forward)
            .unwrap_or_else(|e| panic!("nb={nb}: {e}"));
        dev.ntt_in_place(&mut h, NttDirection::Inverse).unwrap();
        assert_eq!(dev.read_polynomial(&h).unwrap(), x, "nb={nb}");
    }
}

#[test]
fn on_device_polymul_equals_cpu_polymul() {
    let n = 512;
    let q = find_ntt_prime(2 * n as u64, 30).unwrap() as u32;
    let a = poly(n, q, 1);
    let b = poly(n, q, 2);

    // Device path.
    let mut dev = PimDevice::new(PimConfig::hbm2e(6)).unwrap();
    let ha = dev.load_polynomial(0, &a, q).unwrap();
    let hb = dev.load_polynomial(n, &b, q).unwrap();
    dev.polymul_negacyclic(&ha, &hb).unwrap();
    let got = dev.read_polynomial(&ha).unwrap();

    // CPU path via the reference library.
    let psi = root_of_unity(2 * n as u64, q as u64).unwrap();
    let field = NttField::with_psi(n, q as u64, psi).unwrap();
    let plan = NttPlan::new(field);
    let a64: Vec<u64> = a.iter().map(|&v| v as u64).collect();
    let b64: Vec<u64> = b.iter().map(|&v| v as u64).collect();
    let expect = ntt_pim::reference::poly::mul_negacyclic(&plan, &a64, &b64);
    assert!(got.iter().zip(&expect).all(|(&g, &e)| g as u64 == e));
}

#[test]
fn two_polynomials_in_one_bank_do_not_interfere() {
    let n = 256;
    let q = find_ntt_prime(2 * n as u64, 28).unwrap() as u32;
    let mut dev = PimDevice::new(PimConfig::hbm2e(2)).unwrap();
    let x = poly(n, q, 3);
    let y = poly(n, q, 4);
    let mut hx = dev.load_polynomial_bitrev(0, &x, q).unwrap();
    let hy = dev.load_polynomial_bitrev(2 * n, &y, q).unwrap();
    dev.ntt_in_place(&mut hx, NttDirection::Forward).unwrap();
    // y's region is untouched by x's transform.
    assert_eq!(dev.read_polynomial(&hy).unwrap(), y);
}

#[test]
fn batch_results_match_individual_transforms() {
    let n = 256;
    let banks = 3;
    let mut dev = PimDevice::new(PimConfig::hbm2e(2).with_banks(banks)).unwrap();
    let mut handles = Vec::new();
    let mut inputs = Vec::new();
    let mut moduli = Vec::new();
    for b in 0..banks as usize {
        // Different modulus per bank — the RNS pattern.
        let q = find_ntt_prime(2 * n as u64, (28 + b) as u32).unwrap() as u32;
        let x = poly(n, q, 100 + b as u64);
        handles.push(
            dev.load_in_bank(b, 0, &x, q, StoredOrder::BitReversed)
                .unwrap(),
        );
        inputs.push(x);
        moduli.push(q);
    }
    dev.ntt_batch(&mut handles).unwrap();
    for b in 0..banks as usize {
        let got = dev.read_polynomial(&handles[b]).unwrap();
        let mut single = PimDevice::new(PimConfig::hbm2e(2)).unwrap();
        let mut h = single
            .load_polynomial_bitrev(0, &inputs[b], moduli[b])
            .unwrap();
        single.ntt_in_place(&mut h, NttDirection::Forward).unwrap();
        assert_eq!(got, single.read_polynomial(&h).unwrap(), "bank {b}");
    }
}

#[test]
fn fhe_pipeline_runs_on_simulated_device() {
    use ntt_pim::fhe::executor::ntt_all_components;
    use ntt_pim::fhe::params::RlweParams;
    use ntt_pim::fhe::rns::RnsPoly;
    use ntt_pim::fhe::sampler;

    let params = RlweParams::new(512, 2, 16).unwrap();
    let mut rns = RnsPoly::zero(&params);
    for i in 0..2 {
        rns.set_residues(i, sampler::uniform(512, params.moduli()[i], 5 + i as u64));
    }
    let config = PimConfig::hbm2e(2).with_banks(2);
    let report = ntt_all_components(&params, &rns, &config).unwrap();
    assert_eq!(report.transforms, 2);
    assert!(report.speedup() > 1.5);
}
