//! Cross-backend parity: every engine behind [`ntt_pim::engine::NttEngine`]
//! must produce the *identical* forward NTT wherever its capability
//! window covers the request — the PIM device included. The grid spans
//! the ISSUE's N ∈ {256, 1024, 4096} and q ∈ {7681, 12289, 8380417}
//! (Kyber-ish, NewHope, and Dilithium moduli); combinations outside a
//! backend's window (e.g. N=1024 with q=7681, which lacks a 2048-th
//! root of unity) are skipped *by the capability metadata*, never by
//! hand-maintained lists.
//!
//! The golden comparisons run on the Shoup/Harvey **lazy-reduction**
//! kernel: every grid modulus is inside the lazy bound (`q < 2⁶²`), so
//! `CpuNttEngine`'s plans take the lazy datapath by default (asserted
//! below) — parity across the PIM device, the CPU dataflows, and the
//! published models therefore proves the lazy kernel against all of
//! them at once.

use ntt_pim::engine::{all_engines, cpu_kernel_label, CpuNttEngine, NttEngine, PimDeviceEngine};

const LENGTHS: [usize; 3] = [256, 1024, 4096];
const MODULI: [u64; 3] = [7681, 12289, 8_380_417];

fn poly(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) % q
        })
        .collect()
}

#[test]
fn golden_grid_runs_the_lazy_kernel() {
    // Guard for the parity suite's premise: every modulus in the grid is
    // served by the Shoup-lazy datapath, so the golden comparisons below
    // exercise the lazy kernel, not the widening fallback.
    for &q in &MODULI {
        assert_eq!(cpu_kernel_label(q), "shoup-lazy", "q={q}");
    }
}

#[test]
fn every_backend_matches_the_golden_transform() {
    let mut golden = CpuNttEngine::golden();
    let mut engines = all_engines(2).expect("engine registry");
    let mut covered = 0usize;
    for &n in &LENGTHS {
        for &q in &MODULI {
            if !golden.supports(n, q) {
                continue; // grid point without a 2N-th root of unity
            }
            let input = poly(n, q, n as u64 ^ q);
            let mut expect = input.clone();
            golden.forward(&mut expect, q).unwrap();
            for engine in engines.iter_mut() {
                if !engine.supports(n, q) {
                    continue;
                }
                let mut got = input.clone();
                engine.forward(&mut got, q).unwrap();
                assert_eq!(
                    got,
                    expect,
                    "{} disagrees with golden at N={n}, q={q}",
                    engine.name()
                );
                covered += 1;
            }
        }
    }
    // The PIM device, the CPU dataflows, and at least one published
    // model must each have contributed comparisons.
    assert!(covered >= 15, "only {covered} grid points ran");
}

#[test]
fn pim_device_matches_every_golden_engine_where_supported() {
    // The headline ISSUE requirement, stated from the device's side:
    // PimDevice output == each ntt-ref golden engine, via the trait.
    let mut pim = PimDeviceEngine::hbm2e(2).expect("device");
    let cpu_engines = [
        ntt_pim::engine::CpuDataflow::IterativeDit,
        ntt_pim::engine::CpuDataflow::Stockham,
        ntt_pim::engine::CpuDataflow::FourStep,
    ];
    let mut checked = 0usize;
    for &n in &LENGTHS {
        for &q in &MODULI {
            if !pim.supports(n, q) {
                continue;
            }
            let input = poly(n, q, 0xA5A5 ^ n as u64 ^ q);
            let mut device_out = input.clone();
            pim.forward(&mut device_out, q).unwrap();
            for df in cpu_engines {
                let mut cpu = CpuNttEngine::new(df);
                let mut cpu_out = input.clone();
                cpu.forward(&mut cpu_out, q).unwrap();
                assert_eq!(device_out, cpu_out, "{:?} vs device at N={n} q={q}", df);
            }
            checked += 1;
        }
    }
    assert!(checked >= 5, "device covered only {checked} grid points");
}

#[test]
fn inverse_roundtrips_through_every_backend() {
    let mut engines = all_engines(2).expect("engine registry");
    let (n, q) = (256usize, 12289u64);
    let input = poly(n, q, 77);
    for engine in engines.iter_mut() {
        assert!(
            engine.supports(n, q),
            "{} should cover 256/12289",
            engine.name()
        );
        let mut v = input.clone();
        engine.forward(&mut v, q).unwrap();
        engine.inverse(&mut v, q).unwrap();
        assert_eq!(v, input, "{} roundtrip", engine.name());
    }
}

#[test]
fn capability_windows_differ_meaningfully_across_backends() {
    let engines = all_engines(2).expect("engine registry");
    // Dilithium's 23-bit modulus at N=4096 must be outside every
    // narrow-datapath published model but inside the device and CPU.
    let (n, q) = (4096usize, 8_380_417u64);
    let supported: Vec<&str> = engines
        .iter()
        .filter(|e| e.supports(n, q))
        .map(|e| e.name())
        .collect();
    assert!(supported.iter().any(|s| s.starts_with("ntt-pim")));
    assert!(supported.iter().any(|s| s.starts_with("cpu-")));
    let unsupported = engines.len() - supported.len();
    assert!(
        unsupported >= 3,
        "narrow models must drop out, got {supported:?}"
    );
}
