//! Golden-trace snapshots: the exact DRAM command sequences for small
//! transforms are pinned so that any unintended change to the mapper or
//! scheduler (command order, timing, row management) is caught
//! immediately. Intentional mapping changes must update these snapshots —
//! that review step is the point.

use ntt_pim::core::config::PimConfig;
use ntt_pim::core::layout::PolyLayout;
use ntt_pim::core::mapper::{map_ntt, MapperOptions, NttParams};
use ntt_pim::core::sched::schedule;

fn trace_text(n: usize, nb: usize, q: u32) -> String {
    let config = PimConfig::hbm2e(nb);
    let layout = PolyLayout::new(&config, 0, n).unwrap();
    let omega = ntt_pim::math::prime::root_of_unity(n as u64, q as u64).unwrap() as u32;
    let program = map_ntt(
        &config,
        &layout,
        &NttParams { q, omega },
        &MapperOptions::default(),
    )
    .unwrap();
    let tl = schedule(&config, &program).unwrap();
    ntt_pim::dram::trace::to_text(&tl.bank_trace(), config.timing.resolve().cycle_ps)
}

/// Single-atom transform: CFG+TWD beats (cycles 0–9), ACT, one CU-read,
/// C1 at the CL boundary, write-back after the 15-cycle compute.
#[test]
fn golden_n8_nb2() {
    let expect = "\
# cycle bank command arg
10 0 ACT 0
24 0 RD 0
53 0 WR 0
";
    assert_eq!(trace_text(8, 2, 12289), expect);
}

/// Two atoms at Nb = 2: the prefetched second read lands immediately after
/// the first (software pipelining), then one C2 stage pairs the atoms.
#[test]
fn golden_n16_nb2() {
    let expect = "\
# cycle bank command arg
10 0 ACT 0
24 0 RD 0
26 0 RD 1
53 0 WR 0
69 0 WR 1
74 0 RD 0
83 0 RD 1
107 0 WR 1
109 0 WR 0
";
    // Note the C2-stage write order: the partner-side (S buffer, atom 1)
    // drains first — the §III.C in-place schedule.
    assert_eq!(trace_text(16, 2, 12289), expect);
}

/// The same transform at Nb = 1 runs the scalar strawman: three reads and
/// two writes per butterfly, so the command count explodes (the §III.B
/// argument in trace form).
#[test]
fn golden_n16_nb1_command_count() {
    let text = trace_text(16, 1, 12289);
    let commands = text.lines().filter(|l| !l.starts_with('#')).count();
    // Intra-atom: 2x(RD+WR) = 4; stage 3: 8 butterflies x 5 col cmds = 40;
    // plus the single ACT.
    assert_eq!(commands, 45, "trace:\n{text}");
}
