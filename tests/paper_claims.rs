//! The paper's quantitative claims, asserted as integration tests on the
//! simulator (shape, not absolute nanoseconds — see EXPERIMENTS.md).
//!
//! Every test cites the claim it checks.

use ntt_pim::core::area;
use ntt_pim::core::config::PimConfig;
use ntt_pim::core::layout::PolyLayout;
use ntt_pim::core::mapper::{map_ntt, MapperOptions, NttParams};
use ntt_pim::core::sched::{schedule, schedule_parallel};

const Q: u32 = 2_013_265_921;

fn simulate(nb: usize, n: usize, opts: &MapperOptions) -> ntt_pim::core::sched::Timeline {
    let config = PimConfig::hbm2e(nb);
    let layout = PolyLayout::new(&config, 0, n).unwrap();
    let omega = ntt_pim::math::prime::root_of_unity(n as u64, Q as u64).unwrap() as u32;
    let program = map_ntt(&config, &layout, &NttParams { q: Q, omega }, opts).unwrap();
    schedule(&config, &program).unwrap()
}

fn latency(nb: usize, n: usize) -> f64 {
    simulate(nb, n, &MapperOptions::default()).latency_ns()
}

/// §VI.C: "without auxiliary buffers, there is no performance advantage
/// even compared with a software execution, whereas even just one
/// auxiliary buffer can improve performance by an order of magnitude."
#[test]
fn single_buffer_no_advantage_one_auxiliary_order_of_magnitude() {
    for n in [256usize, 1024] {
        let nb1 = latency(1, n);
        let nb2 = latency(2, n);
        assert!(nb1 / nb2 > 8.0, "n={n}: Nb=1/Nb=2 = {:.1}", nb1 / nb2);
        // Against the paper's published x86 point.
        let x86 = pim_baselines::X86PaperModel;
        use pim_baselines::NttAccelerator;
        let sw = x86.latency_ns(n).unwrap();
        assert!(
            nb1 > sw / 3.0,
            "n={n}: the strawman must not beat software meaningfully"
        );
    }
}

/// §VI.C: "adding more buffers gives very significant speed up of about
/// 1.5 ∼ 2.5× depending on N" and "having multiple auxiliary buffers
/// proves more effective when N is larger."
#[test]
fn pipelining_speedup_range_and_growth() {
    let gain_small = latency(2, 512) / latency(6, 512);
    let gain_large = latency(2, 8192) / latency(6, 8192);
    assert!(
        (1.3..=2.8).contains(&gain_small),
        "gain at N=512: {gain_small:.2}"
    );
    assert!(
        (1.5..=2.8).contains(&gain_large),
        "gain at N=8192: {gain_large:.2}"
    );
    assert!(gain_large > gain_small, "gain must grow with N");
}

/// §VI.D: at 4× lower clock the slowdown is mild (paper: 1.65× at large
/// N) because DRAM nanoseconds dominate, and 3~7× speedup over software
/// is retained.
#[test]
fn frequency_tolerance() {
    let n = 4096;
    let fast = {
        let c = PimConfig::hbm2e(2).with_cu_clock_mhz(1200);
        let layout = PolyLayout::new(&c, 0, n).unwrap();
        let omega = ntt_pim::math::prime::root_of_unity(n as u64, Q as u64).unwrap() as u32;
        let p = map_ntt(
            &c,
            &layout,
            &NttParams { q: Q, omega },
            &MapperOptions::default(),
        )
        .unwrap();
        schedule(&c, &p).unwrap().latency_ns()
    };
    let slow = {
        let c = PimConfig::hbm2e(2).with_cu_clock_mhz(300);
        let layout = PolyLayout::new(&c, 0, n).unwrap();
        let omega = ntt_pim::math::prime::root_of_unity(n as u64, Q as u64).unwrap() as u32;
        let p = map_ntt(
            &c,
            &layout,
            &NttParams { q: Q, omega },
            &MapperOptions::default(),
        )
        .unwrap();
        schedule(&c, &p).unwrap().latency_ns()
    };
    let ratio = slow / fast;
    assert!(
        (1.2..=2.2).contains(&ratio),
        "4x clock drop cost {ratio:.2}x (paper: ~1.65x)"
    );
    use pim_baselines::NttAccelerator;
    let sw = pim_baselines::X86PaperModel.latency_ns(n).unwrap();
    assert!(sw / slow > 3.0, "300 MHz PIM keeps >3x over paper's x86");
}

/// Table II: area under half of Newton's, overhead below 0.7% of a bank.
#[test]
fn area_claims() {
    assert!(area::ratio_to_newton(2) < 0.5);
    for nb in [1usize, 2, 4, 6] {
        assert!(area::percent_of_bank(nb) < 0.7, "nb={nb}");
    }
}

/// §VI.E: "speedup of minimum 1.7× up to 17× depending on the polynomial
/// size" over the best prior accelerator (simulated Nb=6 vs published
/// competitor points).
#[test]
fn headline_speedup_range() {
    let models = pim_baselines::all_models();
    for n in [256usize, 512, 1024, 2048, 4096] {
        let ours = latency(6, n);
        let best = models
            .iter()
            .filter_map(|m| m.latency_ns(n))
            .fold(f64::INFINITY, f64::min);
        let speedup = best / ours;
        assert!(
            (1.5..=25.0).contains(&speedup),
            "n={n}: speedup {speedup:.1} outside the claimed band"
        );
    }
}

/// §V / Fig. 6c: pipelining in the inter-row regime reduces row
/// activations (not just hides latency).
#[test]
fn pipelining_reduces_activations() {
    let n = 4096;
    let a2 = simulate(2, n, &MapperOptions::default()).activations();
    let a4 = simulate(4, n, &MapperOptions::default()).activations();
    let a6 = simulate(6, n, &MapperOptions::default()).activations();
    assert!(a4 < a2, "Nb=4 {a4} !< Nb=2 {a2}");
    assert!(a6 < a4, "Nb=6 {a6} !< Nb=4 {a4}");
    // Roughly 2x and 3x fewer inter-row activations.
    assert!((a2 as f64 / a4 as f64) > 1.6);
}

/// §III.C: in-place update eliminates the separate output region and its
/// extra activations.
#[test]
fn in_place_update_halves_activations() {
    let n = 2048;
    let with = simulate(2, n, &MapperOptions::default()).activations();
    let without = simulate(
        2,
        n,
        &MapperOptions {
            in_place_update: false,
            ..Default::default()
        },
    )
    .activations();
    assert!(
        without as f64 / with as f64 > 2.0,
        "in-place: {with}, ping-pong: {without}"
    );
}

/// Conclusion: near-linear bank-level parallelism.
#[test]
fn bank_parallelism_near_linear() {
    let n = 1024;
    let config = PimConfig::hbm2e(2).with_banks(8);
    let layout = PolyLayout::new(&config, 0, n).unwrap();
    let omega = ntt_pim::math::prime::root_of_unity(n as u64, Q as u64).unwrap() as u32;
    let program = map_ntt(
        &config,
        &layout,
        &NttParams { q: Q, omega },
        &MapperOptions::default(),
    )
    .unwrap();
    let one = schedule(&config, &program).unwrap().end_ps;
    let eight = schedule_parallel(&config, &vec![program; 8])
        .unwrap()
        .end_ps;
    let speedup = 8.0 * one as f64 / eight as f64;
    assert!(speedup > 6.0, "8-bank speedup only {speedup:.2}x");
}

/// §VI.E: latency grows superlinearly in N once inter-row mapping
/// dominates ("longer polynomials require frequent row activations").
#[test]
fn superlinear_growth_with_n() {
    let l1k = latency(2, 1024);
    let l8k = latency(2, 8192);
    // 8x the size, more than 8x the time (N log N plus activation growth).
    assert!(l8k / l1k > 8.0, "8x size cost {:.1}x", l8k / l1k);
}
