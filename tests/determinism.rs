//! Determinism: identical inputs must produce bit-identical schedules,
//! reports and memory images across runs — the property that makes every
//! number in EXPERIMENTS.md reproducible.

use ntt_pim::core::config::PimConfig;
use ntt_pim::core::device::{NttDirection, PimDevice};
use ntt_pim::core::layout::PolyLayout;
use ntt_pim::core::mapper::{map_ntt, MapperOptions, NttParams};
use ntt_pim::core::sched::schedule;

const Q: u32 = 2_013_265_921;

#[test]
fn schedules_are_bit_identical_across_runs() {
    let make = || {
        let config = PimConfig::hbm2e(4);
        let layout = PolyLayout::new(&config, 0, 2048).unwrap();
        let omega = ntt_pim::math::prime::root_of_unity(2048, Q as u64).unwrap() as u32;
        let program = map_ntt(
            &config,
            &layout,
            &NttParams { q: Q, omega },
            &MapperOptions::default(),
        )
        .unwrap();
        schedule(&config, &program).unwrap()
    };
    let a = make();
    let b = make();
    assert_eq!(a.end_ps, b.end_ps);
    assert_eq!(a.events.len(), b.events.len());
    for (x, y) in a.events.iter().zip(&b.events) {
        assert_eq!(x, y);
    }
    assert_eq!(a.counters, b.counters);
}

#[test]
fn device_runs_are_reproducible() {
    let run = || {
        let mut dev = PimDevice::new(PimConfig::hbm2e(2)).unwrap();
        let poly: Vec<u32> = (0..1024u32).map(|i| i.wrapping_mul(97) % Q).collect();
        let mut h = dev.load_polynomial_bitrev(0, &poly, Q).unwrap();
        let rep = dev.ntt_in_place(&mut h, NttDirection::Forward).unwrap();
        (
            rep.latency_ns(),
            rep.activations(),
            dev.read_polynomial(&h).unwrap(),
        )
    };
    let (l1, a1, v1) = run();
    let (l2, a2, v2) = run();
    assert_eq!(l1, l2);
    assert_eq!(a1, a2);
    assert_eq!(v1, v2);
}

#[test]
fn fhe_sampler_chain_is_seed_deterministic() {
    use ntt_pim::fhe::{bfv, params::RlweParams, sampler};
    let p = RlweParams::new(256, 2, 16).unwrap();
    let (sk1, pk1) = bfv::keygen(&p, 42).unwrap();
    let (sk2, _pk2) = bfv::keygen(&p, 42).unwrap();
    let m = sampler::plaintext(p.n(), p.t(), 1);
    let c1 = bfv::encrypt(&p, &pk1, &m, 2).unwrap();
    // Same seeds → decrypting with the re-derived key works identically.
    assert_eq!(bfv::decrypt(&p, &sk1, &c1).unwrap(), m);
    assert_eq!(bfv::decrypt(&p, &sk2, &c1).unwrap(), m);
}

#[test]
fn trace_text_roundtrip_preserves_schedule() {
    let config = PimConfig::hbm2e(2);
    let layout = PolyLayout::new(&config, 0, 512).unwrap();
    let omega = ntt_pim::math::prime::root_of_unity(512, Q as u64).unwrap() as u32;
    let program = map_ntt(
        &config,
        &layout,
        &NttParams { q: Q, omega },
        &MapperOptions::default(),
    )
    .unwrap();
    let tl = schedule(&config, &program).unwrap();
    let cycle = config.timing.resolve().cycle_ps;
    let text = ntt_pim::dram::trace::to_text(&tl.bank_trace(), cycle);
    let back = ntt_pim::dram::trace::from_text(&text, cycle).unwrap();
    assert_eq!(back, tl.bank_trace());
    // And the re-parsed trace still validates.
    ntt_pim::dram::validate::validate_trace(config.timing.resolve(), config.geometry, &back)
        .unwrap_or_else(|(i, e)| panic!("entry {i}: {e}"));
}
